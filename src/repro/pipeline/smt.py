"""SMT pipeline: 2-4 hardware threads sharing one resizable window.

The paper resizes one window per core; its own premise — MLP phases
want *depth*, ILP phases want *speed* — is sharpest when several
hardware threads share that window.  Here each thread carries its own
trace, rename map, branch predictor and (for the ``mlp`` partition) its
own MLP phase detector, while the ROB/IQ/LSQ :class:`~repro.pipeline.
resources.WindowSet` and the fetch/dispatch/commit bandwidth are
shared.  A :mod:`repro.core.partition` policy maps the per-thread
detector levels onto per-thread entry quotas — the thread inside a
miss cluster gets the deep (slow) partition, ILP-phase threads keep
shallow fast ones — and an ICOUNT-style, MLP-aware selector picks
which thread fetches each cycle.

Design notes:

* :class:`SMTProcessor` subclasses :class:`~repro.pipeline.core.
  Processor` and inherits the thread-agnostic machinery unchanged
  (event heap, global oldest-first issue, wakeup propagation, the
  ``step_cycle`` stage order).  Thread-dependent stages (fetch,
  dispatch, commit, squash, policy) are overridden.  With one thread
  and a static partition every override reduces exactly to the
  baseline stage, which is what makes the single-thread-SMT ≡ baseline
  digest oracle (``python -m repro.verify smt``) hold bit-for-bit.
* Threads are address-space disjoint: thread ``t``'s data addresses
  are offset by ``t * 0x100_0000_0000`` and its PCs by
  ``t * 0x10_0000`` at every hierarchy access, so the shared caches
  see distinct, non-aliasing streams (thread 0's offsets are zero).
* A thread's *depth* (wakeup delay, branch penalty) tracks its own
  partition level, not the provisioned window: an ILP thread next to a
  miss-cluster thread keeps the shallow fast pipeline even though the
  physical window is large.
* Quotas gate *new* dispatch only.  After a repartition a thread whose
  occupancy exceeds its new quota simply cannot dispatch until it
  drains — the SMT analogue of the paper's ``stop_alloc`` drain, so
  the detectors run against an always-shrinkable window view.
* Engines: :func:`repro.pipeline.engine._must_defer` returns True for
  SMT processors, so the FastEngine explicitly falls back to this
  module's reference stepper.

Per-thread stall-slot CPI attribution (digest-excluded) is not
maintained; every digest-visible counter is kept per thread.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush as _heappush
from typing import TYPE_CHECKING

from repro.config import ModelKind, ProcessorConfig
from repro.core.partition import PartitionPolicy, make_partition_policy
from repro.core.policies import StaticPolicy
from repro.core.resizing import MLPAwarePolicy
from repro.debug.errors import DeadlockError
from repro.frontend import BranchPredictor
from repro.isa import EXEC_LATENCY, OpClass, REG_INVALID
from repro.memory import AccessPath
from repro.pipeline.core import (
    DECODE_LATENCY,
    FETCH_BUFFER,
    InFlightOp,
    Processor,
    _EV_COMPLETE,
    _EV_WAKE,
)
from repro.stats import SimStats, SimulationResult, mlp_from_intervals

if TYPE_CHECKING:
    from repro.workloads.trace import Trace

#: per-thread address-space offsets (thread 0 = 0, so a 1-thread SMT
#: run touches exactly the baseline addresses)
DATA_OFFSET = 0x100_0000_0000
PC_OFFSET = 0x10_0000


class SMTOp(InFlightOp):
    """An in-flight micro-op tagged with its hardware thread."""

    __slots__ = ("tid",)

    def __init__(self, seq: int, uop, trace_idx: int, wrong_path: bool,
                 tid: int) -> None:
        super().__init__(seq, uop, trace_idx, wrong_path)
        self.tid = tid


class _AlwaysShrinkable:
    """Window view handed to per-thread detectors: shrink is always
    granted, because quota gating (not ``stop_alloc``) performs the
    drain after a repartition."""

    committed = 0

    @staticmethod
    def can_shrink_to(level: int) -> bool:
        return True


_DETECTOR_VIEW = _AlwaysShrinkable()


class SMTThread:
    """Per-thread context: front-end state, rename map, private ROB
    view, quota/occupancy accounting and statistics."""

    __slots__ = (
        "tid", "trace", "predictor", "stats", "policy", "level",
        "extra_wakeup_delay", "extra_branch_penalty",
        "trace_idx", "wrong_mode", "wrong_branch", "wrong_base_pc",
        "wrong_k", "fetch_stall_until", "last_fetch_line", "decode_q",
        "map", "rob", "pending_stores",
        "quota_iq", "quota_rob", "quota_lsq",
        "occ_iq", "occ_rob", "occ_lsq",
        "alloc_stall_until", "committed", "outstanding_misses",
        "data_off", "pc_off", "last_commit_idx",
    )

    def __init__(self, tid: int, trace: "Trace",
                 predictor: BranchPredictor, stats: SimStats,
                 policy: MLPAwarePolicy | None, level: int) -> None:
        self.tid = tid
        self.trace = trace
        self.predictor = predictor
        self.stats = stats
        #: per-thread MLP phase detector (``mlp`` partition), else None
        self.policy = policy
        self.level = level
        self.extra_wakeup_delay = 0
        self.extra_branch_penalty = 0
        self.trace_idx = 0
        self.wrong_mode = False
        self.wrong_branch: SMTOp | None = None
        self.wrong_base_pc = 0
        self.wrong_k = 0
        self.fetch_stall_until = 0
        self.last_fetch_line = -1
        self.decode_q: deque[tuple[int, SMTOp]] = deque()
        self.map: dict[int, SMTOp] = {}
        self.rob: deque[SMTOp] = deque()
        self.pending_stores: dict[int, SMTOp] = {}
        self.quota_iq = 0
        self.quota_rob = 0
        self.quota_lsq = 0
        self.occ_iq = 0
        self.occ_rob = 0
        self.occ_lsq = 0
        self.alloc_stall_until = 0
        self.committed = 0
        #: correct-path demand L2 misses in flight (fetch deprioritiser)
        self.outstanding_misses = 0
        self.data_off = tid * DATA_OFFSET
        self.pc_off = tid * PC_OFFSET
        self.last_commit_idx = -1

    def drained(self) -> bool:
        return (not self.wrong_mode
                and self.trace_idx >= len(self.trace.ops)
                and not self.rob and not self.decode_q)

    def icount(self) -> int:
        """ICOUNT fetch priority: ops in decode/rename plus the IQ."""
        return len(self.decode_q) + self.occ_iq


class SMTProcessor(Processor):
    """One SMT core running 2-4 traces over a shared window."""

    is_smt = True

    def __init__(self, config: ProcessorConfig, traces: list["Trace"],
                 validate: bool = False) -> None:
        smt = config.smt
        if smt is None:
            raise ValueError("SMTProcessor needs config.smt "
                             "(see repro.config.smt_config)")
        if len(traces) != smt.threads:
            raise ValueError(f"config.smt.threads={smt.threads} but "
                             f"{len(traces)} traces supplied")
        # The base ctor provisions the shared window at config.level and
        # registers this object's (overridden) L2-miss listener.  The
        # base policy is pinned static — per-thread detectors replace it.
        super().__init__(config, traces[0], policy=StaticPolicy(config.level))

        self.partition: PartitionPolicy = make_partition_policy(
            smt.partition, config.levels, config.level)
        self.fetch_policy = smt.fetch
        self._nthreads = smt.threads
        self._validate = validate

        detectors_live = (smt.partition == "mlp")
        self.threads: list[SMTThread] = []
        for tid, trace in enumerate(traces):
            predictor = (self.predictor if tid == 0
                         else BranchPredictor(config.branch))
            stats = self.stats if tid == 0 else SimStats()
            detector = None
            if detectors_live:
                detector = MLPAwarePolicy(
                    max_level=config.level,
                    memory_latency=config.memory.min_latency)
            thread = SMTThread(tid, trace, predictor, stats, detector,
                               level=config.level)
            self.threads.append(thread)
        self._apply_partition()
        for thread in self.threads:
            if detectors_live:
                thread.level = thread.policy.level
            else:
                thread.level = self.partition.depth_level(
                    thread.tid, [t.level for t in self.threads],
                    thread.quota_rob)
            self._set_thread_depth(thread)
        if detectors_live:
            # detectors start at level 1: repartition to match
            self._apply_partition()
        #: per-thread detectors replace the inert base policy; the
        #: inherited step_cycle gates the policy stage on this flag
        self._policy_inert = not detectors_live
        #: thread whose hierarchy access is in progress (routes the
        #: synchronous L2-miss listener callback)
        self._cur_thread = self.threads[0]
        # stage rotation pointers (fairness of tied bandwidth claims)
        self._commit_rr = 0
        self._dispatch_rr = 0
        self._fetch_rr = 0

    # ------------------------------------------------------------------
    # partitioning

    def _set_thread_depth(self, thread: SMTThread) -> None:
        cfg = self.config.level_config(thread.level)
        thread.extra_wakeup_delay = cfg.extra_wakeup_delay
        thread.extra_branch_penalty = cfg.extra_branch_penalty

    def _apply_partition(self) -> None:
        levels = [t.level for t in self.threads]
        quotas = self.partition.quotas(levels, self.window)
        for thread, (qi, qr, ql) in zip(self.threads, quotas):
            thread.quota_iq = qi
            thread.quota_rob = qr
            thread.quota_lsq = ql

    def _apply_thread_level(self, thread: SMTThread, new_level: int) -> None:
        stats = thread.stats
        if new_level > thread.level:
            stats.enlarge_transitions += 1
        else:
            stats.shrink_transitions += 1
        stats.level_transitions.append((self.cycle, new_level))
        thread.level = new_level
        self._set_thread_depth(thread)
        # The transition penalty is charged to the thread whose own
        # level changed; peers absorb the induced quota change for free
        # (their structures are not the ones being repipelined).
        thread.alloc_stall_until = max(
            thread.alloc_stall_until,
            self.cycle + self.config.transition_penalty)
        self._apply_partition()

    def _policy_stage(self) -> bool:
        acted = False
        for thread in self.threads:
            detector = thread.policy
            if detector is None:
                continue
            decision = detector.tick(self.cycle, _DETECTOR_VIEW)
            new_level = decision.new_level
            if new_level is not None and new_level != thread.level:
                self._apply_thread_level(thread, new_level)
                acted = True
        return acted

    def _on_l2_miss(self, detect_cycle: int) -> None:
        thread = self._cur_thread
        if thread.policy is not None:
            thread.policy.on_l2_miss(detect_cycle)
        thread.stats.l2_miss_cycles.append(detect_cycle)

    # ------------------------------------------------------------------
    # events / completion

    def _complete_op(self, op: SMTOp) -> None:
        if op.squashed or op.complete:
            return
        op.complete = True
        op.complete_cycle = self.cycle
        thread = self.threads[op.tid]
        if op.uop.is_branch and op.branch_token is not None:
            self._resolve_branch(op)
        if op.uop.is_store:
            self._store_executed(op)
        if op.l2_miss and not op.wrong_path and op.uop.is_load:
            if thread.outstanding_misses > 0:
                thread.outstanding_misses -= 1
        latency = max(1, self.cycle - op.issue_cycle)
        delay = max(0, thread.extra_wakeup_delay + 1 - latency)
        op.woken_at = self.cycle + delay
        thread.stats.activity.iq_wakeups += 1
        if delay == 0:
            self._wake_consumers(op)
        else:
            self._schedule(op.woken_at, _EV_WAKE, op)

    # ------------------------------------------------------------------
    # branch resolution / squash

    def _resolve_branch(self, op: SMTOp) -> None:
        thread = self.threads[op.tid]
        uop = op.uop
        thread.predictor.resolve(op.branch_token, uop.taken, uop.target)
        if not op.mispredicted:
            return
        self._squash_thread_after(thread, op.seq)
        if thread.wrong_branch is op:
            thread.wrong_mode = False
            thread.wrong_branch = None
        penalty = (self.config.branch.mispredict_penalty
                   + thread.extra_branch_penalty)
        thread.fetch_stall_until = max(thread.fetch_stall_until,
                                       self.cycle + penalty)
        thread.last_fetch_line = -1

    def _squash_thread_after(self, thread: SMTThread, after_seq: int) -> None:
        """Remove the thread's ops younger than ``after_seq``; other
        threads' in-flight state is untouched (SMT squash is private)."""
        rob = thread.rob
        window = self.window
        stats = thread.stats
        while rob and rob[-1].seq > after_seq:
            op = rob.pop()
            op.squashed = True
            window.rob.release()
            thread.occ_rob -= 1
            if op.in_iq and not op.issued:
                window.iq.release()
                thread.occ_iq -= 1
            if op.uop.is_mem:
                window.lsq.release()
                thread.occ_lsq -= 1
            if (op.l2_miss and not op.wrong_path and op.uop.is_load
                    and not op.complete and thread.outstanding_misses > 0):
                thread.outstanding_misses -= 1
            stats.squashed_uops += 1
        for __, op in thread.decode_q:
            op.squashed = True
            stats.squashed_uops += 1
        thread.decode_q.clear()
        thread.map.clear()
        thread.pending_stores.clear()
        for op in rob:
            dst = op.uop.dst
            if dst != REG_INVALID:
                thread.map[dst] = op
            if op.uop.is_store:
                thread.pending_stores[op.uop.addr & ~7] = op

    # ------------------------------------------------------------------
    # commit

    def _commit_stage(self) -> int:
        committed = 0
        width = self._width
        window = self.window
        n = self._nthreads
        start = self._commit_rr
        for i in range(n):
            thread = self.threads[start + i if start + i < n
                                  else start + i - n]
            rob = thread.rob
            while rob and committed < width:
                op = rob[0]
                if not op.complete:
                    break
                rob.popleft()
                window.rob.release()
                thread.occ_rob -= 1
                if op.uop.is_mem:
                    window.lsq.release()
                    thread.occ_lsq -= 1
                self._commit_op(op)
                committed += 1
            if committed >= width:
                break
        self._commit_rr = start + 1 if start + 1 < n else 0
        if committed:
            window.committed += committed
        self._last_stall_reason = None
        return committed

    def _commit_op(self, op: SMTOp) -> None:
        uop = op.uop
        thread = self.threads[op.tid]
        self.committed_total += 1
        thread.committed += 1
        if self._validate and op.trace_idx >= 0:
            if op.trace_idx <= thread.last_commit_idx:
                raise AssertionError(
                    f"thread {thread.tid}: out-of-order commit "
                    f"(trace idx {op.trace_idx} after "
                    f"{thread.last_commit_idx})")
            thread.last_commit_idx = op.trace_idx
        stats = thread.stats
        stats.committed_uops += 1
        if uop.is_load:
            stats.committed_loads += 1
        elif uop.is_store:
            stats.committed_stores += 1
            word = uop.addr & ~7
            if thread.pending_stores.get(word) is op:
                del thread.pending_stores[word]
            self._cur_thread = thread
            self.hierarchy.store(uop.addr + thread.data_off, self.cycle,
                                 AccessPath.CORRECT)
        elif uop.is_branch:
            stats.committed_branches += 1
            if op.mispredicted:
                stats.committed_mispredicts += 1
                stats.note_mispredict_commit()
        stats.activity.rob_reads += 1

    # ------------------------------------------------------------------
    # issue (the global stage is inherited; per-op hooks are per-thread)

    def _issue_op(self, op: SMTOp) -> None:
        now = self.cycle
        op.issued = True
        op.issue_cycle = now
        thread = self.threads[op.tid]
        if op.in_iq:
            self.window.iq.release()
            thread.occ_iq -= 1
            op.in_iq = False
        stats = thread.stats
        stats.issued_uops += 1
        stats.activity.iq_issues += 1
        stats.activity.fu_ops += 1
        uop = op.uop
        if uop.is_load:
            self._issue_load(op)
        elif uop.is_store:
            self._issue_store(op)
        else:
            self._schedule(now + EXEC_LATENCY[uop.op], _EV_COMPLETE, op)

    def _issue_load(self, op: SMTOp) -> None:
        thread = self.threads[op.tid]
        addr_ready = self.cycle + EXEC_LATENCY[OpClass.LOAD]
        op.addr_known_cycle = addr_ready
        thread.stats.activity.lsq_searches += 1
        word = op.uop.addr & ~7
        store = thread.pending_stores.get(word)
        if store is not None and not store.squashed and store.seq < op.seq:
            op.forwarded = True
            if store.complete:
                self._schedule(max(addr_ready, store.complete_cycle) + 1,
                               _EV_COMPLETE, op)
            else:
                if store.fwd_waiters is None:
                    store.fwd_waiters = [op]
                else:
                    store.fwd_waiters.append(op)
            return
        self._start_memory_access(op, addr_ready)

    def _start_memory_access(self, op: SMTOp, start: int) -> None:
        thread = self.threads[op.tid]
        uop = op.uop
        path = AccessPath.WRONG if op.wrong_path else AccessPath.CORRECT
        thread.stats.activity.l1d_accesses += 1
        self._cur_thread = thread
        result = self.hierarchy.load(uop.addr + thread.data_off, start,
                                     uop.pc + thread.pc_off, path)
        op.complete_cycle = result.complete_cycle
        if result.l2_miss:
            op.l2_miss = True
            if not op.wrong_path:
                thread.stats.demand_miss_intervals.append(
                    (start, result.complete_cycle))
                thread.outstanding_misses += 1
        self._schedule(result.complete_cycle, _EV_COMPLETE, op)

    def _issue_store(self, op: SMTOp) -> None:
        op.addr_known_cycle = addr_ready = (self.cycle
                                            + EXEC_LATENCY[OpClass.STORE])
        self._schedule(addr_ready, _EV_COMPLETE, op)

    # ------------------------------------------------------------------
    # dispatch

    def _dispatch_stage(self) -> int:
        now = self.cycle
        window = self.window
        width = self._width
        dispatched = 0
        n = self._nthreads
        start = self._dispatch_rr
        stall_noted = False
        for i in range(n):
            thread = self.threads[start + i if start + i < n
                                  else start + i - n]
            queue = thread.decode_q
            if now < thread.alloc_stall_until:
                if queue:
                    thread.stats.dispatch_stall_cycles += 1
                continue
            while queue and dispatched < width:
                ready_at, op = queue[0]
                if ready_at > now:
                    break
                is_mem = op.uop.is_mem
                need_lsq = 1 if is_mem else 0
                if not window.has_room(1, 1, need_lsq):
                    # global backpressure: recorded once per stalled
                    # cycle, exactly like the single-thread stage
                    if not stall_noted:
                        window.note_alloc_stall(1, 1, need_lsq)
                        stall_noted = True
                    thread.stats.dispatch_stall_cycles += 1
                    break
                if (thread.occ_rob >= thread.quota_rob
                        or thread.occ_iq >= thread.quota_iq
                        or (is_mem and thread.occ_lsq >= thread.quota_lsq)):
                    # partition quota reached (or over, after a shrink:
                    # drain-by-gating) — only this thread stalls
                    thread.stats.dispatch_stall_cycles += 1
                    break
                queue.popleft()
                self._dispatch_op(op, thread)
                dispatched += 1
            if dispatched >= width:
                break
        self._dispatch_rr = start + 1 if start + 1 < n else 0
        return dispatched

    def _dispatch_op(self, op: SMTOp, thread: SMTThread) -> None:
        window = self.window
        uop = op.uop
        op.dispatch_cycle = self.cycle
        window.rob.allocate()
        window.iq.allocate()
        thread.occ_rob += 1
        thread.occ_iq += 1
        op.in_iq = True
        if uop.is_mem:
            window.lsq.allocate()
            thread.occ_lsq += 1
        stats = thread.stats
        stats.dispatched_uops += 1
        if op.wrong_path:
            stats.wrong_path_uops += 1
        activity = stats.activity
        activity.renames += 1
        activity.iq_writes += 1
        activity.rob_writes += 1

        now = self.cycle
        pending = 0
        map_get = thread.map.get
        for src in uop.srcs:
            producer = map_get(src)
            if producer is None or producer.squashed:
                continue
            if producer.woken_at >= 0 and producer.woken_at <= now:
                continue
            if producer.consumers is None:
                producer.consumers = [op]
            else:
                producer.consumers.append(op)
            pending += 1
        op.pending_srcs = pending
        op.ready_cycle = now + 1
        if pending == 0:
            _heappush(self._ready, (op.seq, op))
        if uop.dst != REG_INVALID:
            thread.map[uop.dst] = op
        thread.rob.append(op)
        if uop.is_store:
            thread.pending_stores[uop.addr & ~7] = op

    # ------------------------------------------------------------------
    # fetch

    def _select_fetch_thread(self, now: int) -> SMTThread | None:
        """Pick the thread that owns the fetch port this cycle."""
        best = None
        best_key = None
        n = self._nthreads
        rr = self._fetch_rr
        for thread in self.threads:
            if now < thread.fetch_stall_until:
                continue
            if len(thread.decode_q) >= FETCH_BUFFER:
                continue
            if not thread.wrong_mode and \
                    thread.trace_idx >= len(thread.trace.ops):
                continue
            if self.fetch_policy == "roundrobin":
                key = ((thread.tid - rr) % n,)
            elif self.fetch_policy == "icount":
                key = (thread.icount(), thread.tid)
            else:   # "mlp": ICOUNT, but miss-cluster threads last — a
                # thread waiting on DRAM fills its partition from what it
                # already fetched; front-end bandwidth belongs to threads
                # that can turn it into ILP now
                key = (1 if thread.outstanding_misses else 0,
                       thread.icount(), thread.tid)
            if best_key is None or key < best_key:
                best = thread
                best_key = key
        if best is not None and self.fetch_policy == "roundrobin":
            self._fetch_rr = (best.tid + 1) % n
        return best

    def _fetch_stage(self) -> int:
        now = self.cycle
        thread = self._select_fetch_thread(now)
        if thread is None:
            return 0
        fetched = 0
        width = self._width
        queue = thread.decode_q
        activity = thread.stats.activity
        trace_ops = thread.trace.ops
        n_trace_ops = len(trace_ops)
        l1i_line = self._l1i_line_bytes
        l1i_hit = self._l1i_hit_latency
        tid = thread.tid
        pc_off = thread.pc_off
        self._cur_thread = thread
        while fetched < width and len(queue) < FETCH_BUFFER:
            if thread.wrong_mode:
                uop = thread.trace.wrong_path.op_at(thread.wrong_base_pc,
                                                    thread.wrong_k)
                trace_idx = -1
            else:
                if thread.trace_idx >= n_trace_ops:
                    break
                uop = trace_ops[thread.trace_idx]
                trace_idx = thread.trace_idx
            line = uop.pc - (uop.pc % l1i_line)
            if line != thread.last_fetch_line:
                activity.l1i_accesses += 1
                done = self.hierarchy.ifetch(uop.pc + pc_off, now)
                thread.last_fetch_line = line
                if done > now + l1i_hit:
                    thread.fetch_stall_until = done
                    break
            self._seq += 1
            op = SMTOp(self._seq, uop, trace_idx, thread.wrong_mode, tid)
            op.fetch_cycle = now
            activity.fetches += 1
            activity.decodes += 1
            end_cycle = False
            if thread.wrong_mode:
                thread.wrong_k += 1
                end_cycle = uop.is_branch
            elif uop.is_branch:
                end_cycle = self._fetch_branch_smt(thread, op)
            else:
                thread.trace_idx += 1
            queue.append((now + DECODE_LATENCY, op))
            fetched += 1
            if end_cycle:
                break
        return fetched

    def _fetch_branch_smt(self, thread: SMTThread, op: SMTOp) -> bool:
        uop = op.uop
        thread.stats.activity.bpred_lookups += 1
        pred_taken, pred_target, token = thread.predictor.predict(
            uop.pc, uop.pc + 4)
        op.branch_token = token
        thread.trace_idx += 1
        actual_taken = uop.taken
        mispredicted = (pred_taken != actual_taken
                        or (actual_taken and pred_target != uop.target))
        op.mispredicted = mispredicted
        if mispredicted:
            thread.wrong_mode = True
            thread.wrong_branch = op
            thread.wrong_base_pc = pred_target if pred_taken else uop.pc + 4
            thread.wrong_k = 0
        return pred_taken

    # ------------------------------------------------------------------
    # main loop plumbing

    def _advance_accounting(self, delta: int) -> None:
        now = self.cycle
        __, ___, ____, iq_m, rob_m, lsq_m = self._cap_vec
        for thread in self.threads:
            stats = thread.stats
            stats.cycles += delta
            stats.note_level_cycles(thread.level, delta)
            activity = stats.activity
            activity.iq_size_cycles += thread.quota_iq * delta
            activity.rob_size_cycles += thread.quota_rob * delta
            activity.lsq_size_cycles += thread.quota_lsq * delta
            activity.iq_max_cycles += iq_m * delta
            activity.rob_max_cycles += rob_m * delta
            activity.lsq_max_cycles += lsq_m * delta
            if now < thread.alloc_stall_until:
                stats.transition_stall_cycles += min(
                    delta, thread.alloc_stall_until - now)

    def _trace_done(self) -> bool:
        for thread in self.threads:
            if not thread.drained():
                return False
        return True

    def _next_interesting_cycle(self) -> int | None:
        now = self.cycle
        candidates = []
        if self._events:
            candidates.append(self._events[0][0])
        for thread in self.threads:
            if thread.fetch_stall_until > now:
                candidates.append(thread.fetch_stall_until)
            if thread.alloc_stall_until > now:
                candidates.append(thread.alloc_stall_until)
            if thread.decode_q:
                head_ready = thread.decode_q[0][0]
                if head_ready > now:
                    candidates.append(head_ready)
            detector = thread.policy
            if detector is not None:
                if detector.wants_tick_every_cycle:
                    candidates.append(now + 1)
                timer = detector.next_timer()
                if timer is not None and timer > now:
                    candidates.append(timer)
        future = [c for c in candidates if c > now]
        return min(future) if future else None

    def _deadlock_report(self, headline: str) -> str:
        window = self.window
        lines = [
            f"SMT deadlock at cycle {self.cycle}: {headline}",
            f"  rob={window.rob!r} iq={window.iq!r} lsq={window.lsq!r}",
            f"  events={len(self._events)} scheduled, "
            f"ready={len(self._ready)} queued",
        ]
        for t in self.threads:
            lines.append(
                f"  t{t.tid} {t.trace.name}: committed={t.committed} "
                f"trace_idx={t.trace_idx}/{len(t.trace.ops)} "
                f"wrong_mode={t.wrong_mode} level={t.level} "
                f"rob={t.occ_rob}/{t.quota_rob} iq={t.occ_iq}/{t.quota_iq} "
                f"lsq={t.occ_lsq}/{t.quota_lsq} decode_q={len(t.decode_q)} "
                f"fetch_stall_until={t.fetch_stall_until}")
        return "\n".join(lines)

    def run(self, until_committed: int,
            max_cycles: int | None = None) -> None:
        """Advance until *every* thread commits ``until_committed`` ops
        (or drains its trace).  Threads past the target keep executing —
        an SMT core cannot pause one context's clock."""
        if max_cycles is None:
            remaining = sum(max(0, until_committed - t.committed)
                            for t in self.threads)
            max_cycles = self.cycle + (remaining + 1000) * 600
        step = self.step_cycle
        advance = self.advance
        validate = self._validate
        while any(t.committed < until_committed and not t.drained()
                  for t in self.threads):
            if self.cycle > max_cycles:
                raise DeadlockError(self._deadlock_report(
                    f"exceeded {max_cycles} cycles before every thread "
                    f"reached {until_committed} commits (likely livelock)"))
            delta = step()
            if delta == 0:
                break
            advance(delta)
            if validate:
                self.check_invariants()

    # ------------------------------------------------------------------
    # invariants

    def check_invariants(self) -> None:
        """Partition invariants (the ``verify smt`` oracle material):
        for partitioned policies the quotas are disjoint shares summing
        exactly to the active capacity, every thread keeps >= 1 entry,
        and the per-thread occupancies always sum to the shared
        window's occupancy (so partitions can never overlap nor exceed
        the active capacity)."""
        window = self.window
        threads = self.threads
        for name, res, quota_of, occ_of in (
                ("IQ", window.iq,
                 lambda t: t.quota_iq, lambda t: t.occ_iq),
                ("ROB", window.rob,
                 lambda t: t.quota_rob, lambda t: t.occ_rob),
                ("LSQ", window.lsq,
                 lambda t: t.quota_lsq, lambda t: t.occ_lsq)):
            if self.partition.partitioned:
                total_quota = sum(quota_of(t) for t in threads)
                if total_quota != res.capacity:
                    raise AssertionError(
                        f"{name}: quotas sum to {total_quota}, active "
                        f"capacity is {res.capacity}")
                for t in threads:
                    if quota_of(t) < 1:
                        raise AssertionError(
                            f"{name}: thread {t.tid} starved "
                            f"(quota {quota_of(t)})")
            total_occ = sum(occ_of(t) for t in threads)
            if total_occ != res.occupancy:
                raise AssertionError(
                    f"{name}: per-thread occupancies sum to {total_occ}, "
                    f"shared occupancy is {res.occupancy}")
            if res.occupancy > res.capacity:
                raise AssertionError(
                    f"{name}: occupancy {res.occupancy} exceeds active "
                    f"capacity {res.capacity}")

    # ------------------------------------------------------------------
    # measurement control and results

    def prewarm(self, budget_fraction: float = 0.625) -> None:
        """Per-thread prewarm: the shared-L2 budget is split evenly
        between threads (same discipline as the multicore split), each
        thread's regions installed at its address-space offset, and
        each thread's predictor pretrained on its own branch stream."""
        h = self.hierarchy
        per_thread = budget_fraction / self._nthreads
        line = h.l2.line_bytes
        for thread in self.threads:
            budget = int(self.config.l2.size_bytes * per_thread)
            regions = sorted(thread.trace.warm_regions,
                             key=lambda r: (not r[2], r[1]))
            off = thread.data_off
            for base, size, l1_too in regions:
                span = min(size, budget)
                span -= span % line
                if span <= 0:
                    break
                budget -= span
                h.l2.install_span(base + off, span, ready_at=0,
                                  brought_by=-1, touched=True)
                if l1_too and size <= self.config.l1d.size_bytes:
                    h.l1d.install_span(base + off, size, ready_at=0,
                                       brought_by=-1)
            predictor = thread.predictor
            for uop in thread.trace.ops:
                if uop.op is OpClass.BRANCH:
                    __, ___, token = predictor.predict(uop.pc, uop.pc + 4)
                    predictor.resolve(token, uop.taken, uop.target)
            predictor.predictions = 0
            predictor.mispredictions = 0

    def reset_measurement(self) -> None:
        for thread in self.threads:
            thread.stats.reset()
            thread.predictor.predictions = 0
            thread.predictor.mispredictions = 0
        # an SMT core owns its whole hierarchy (no shared facade), so
        # the facade reset covers every level exactly once
        self.hierarchy.reset_measurement()

    def _memory_stats(self) -> dict:
        h = self.hierarchy
        return {
            "l1i_accesses": h.l1i.accesses,
            "l1i_misses": h.l1i.misses,
            "l1d_accesses": h.l1d.accesses,
            "l1d_misses": h.l1d.misses,
            "l2_accesses": h.l2.accesses,
            "l2_misses": h.l2.misses,
            "dram_requests": h.memory.requests,
            "prefetch_fills": h.prefetch_fills,
            "row_hit_rate": getattr(h.memory, "row_hit_rate",
                                    lambda: 0.0)(),
        }

    def thread_result(self, tid: int) -> SimulationResult:
        """Per-thread result: every per-thread counter is private; the
        memory stats / load latency / line usage are hierarchy-wide
        (the caches are physically shared between the contexts)."""
        thread = self.threads[tid]
        stats = thread.stats
        return SimulationResult(
            program=thread.trace.name,
            model=self.config.model.value,
            level=self.config.level,
            cycles=stats.cycles,
            instructions=stats.committed_uops,
            ipc=stats.ipc,
            avg_load_latency=self.hierarchy.average_load_latency(),
            mispredict_rate=thread.predictor.mispredict_rate(),
            mlp=mlp_from_intervals(stats.demand_miss_intervals),
            level_residency=stats.level_residency(),
            line_usage=self.hierarchy.line_usage().as_dict(),
            memory_stats=self._memory_stats(),
            stats=stats,
        )

    def results(self) -> list[SimulationResult]:
        return [self.thread_result(tid) for tid in range(self._nthreads)]

    def aggregate_result(self) -> SimulationResult:
        """Whole-core view: summed commit/activity counters over the
        shared clock, so aggregate IPC is core throughput and the
        energy model sees total structure activity.  The telemetry /
        service label is ``smt<threads>-<partition>``."""
        agg = SimStats()
        agg.cycles = self.threads[0].stats.cycles
        for thread in self.threads:
            st = thread.stats
            agg.committed_uops += st.committed_uops
            agg.committed_loads += st.committed_loads
            agg.committed_stores += st.committed_stores
            agg.committed_branches += st.committed_branches
            agg.committed_mispredicts += st.committed_mispredicts
            agg.dispatched_uops += st.dispatched_uops
            agg.issued_uops += st.issued_uops
            agg.squashed_uops += st.squashed_uops
            agg.wrong_path_uops += st.wrong_path_uops
            agg.enlarge_transitions += st.enlarge_transitions
            agg.shrink_transitions += st.shrink_transitions
            agg.stop_alloc_cycles += st.stop_alloc_cycles
            agg.transition_stall_cycles += st.transition_stall_cycles
            agg.fetch_stall_cycles += st.fetch_stall_cycles
            agg.dispatch_stall_cycles += st.dispatch_stall_cycles
            for level, cycles in st.level_cycles.items():
                agg.note_level_cycles(level, cycles)
            agg.level_transitions.extend(st.level_transitions)
            agg.l2_miss_cycles.extend(st.l2_miss_cycles)
            agg.demand_miss_intervals.extend(st.demand_miss_intervals)
            agg.mispredict_distances.extend(st.mispredict_distances)
            act, tact = agg.activity, st.activity
            for field in tact.__slots__:
                setattr(act, field, getattr(act, field)
                        + getattr(tact, field))
        agg.level_transitions.sort()
        agg.l2_miss_cycles.sort()
        agg.demand_miss_intervals.sort()
        predictions = sum(t.predictor.predictions for t in self.threads)
        mispredictions = sum(t.predictor.mispredictions
                             for t in self.threads)
        smt = self.config.smt
        return SimulationResult(
            program="+".join(t.trace.name for t in self.threads),
            model=f"smt{self._nthreads}-{smt.partition}",
            level=self.config.level,
            cycles=agg.cycles,
            instructions=agg.committed_uops,
            ipc=agg.ipc,
            avg_load_latency=self.hierarchy.average_load_latency(),
            mispredict_rate=(mispredictions / predictions
                             if predictions else 0.0),
            mlp=mlp_from_intervals(agg.demand_miss_intervals),
            level_residency=agg.level_residency(),
            line_usage=self.hierarchy.line_usage().as_dict(),
            memory_stats=self._memory_stats(),
            stats=agg,
        )


class SMTRun:
    """Finished SMT simulation: per-thread results plus the core view."""

    __slots__ = ("threads", "aggregate")

    def __init__(self, threads: list[SimulationResult],
                 aggregate: SimulationResult) -> None:
        self.threads = threads
        self.aggregate = aggregate

    def throughput(self) -> float:
        """Committed micro-ops per shared-clock cycle, all threads."""
        return self.aggregate.ipc

    def __repr__(self) -> str:
        per = ", ".join(f"{r.program}={r.ipc:.3f}" for r in self.threads)
        return f"<SMTRun throughput={self.throughput():.3f} [{per}]>"


def simulate_smt(config: ProcessorConfig, traces: list["Trace"],
                 warmup: int = 3_000, measure: int = 8_000,
                 prewarm: bool = True, engine: str | None = None,
                 validate: bool = False) -> SMTRun:
    """Run one SMT core over per-thread traces and return all results.

    Mirrors :func:`repro.pipeline.core.simulate`: prewarm, run until
    every thread commits ``warmup`` ops, reset measurement, run until
    every thread commits ``warmup + measure``.  ``engine`` resolves via
    the PR 6 engine interface; the fast engine detects ``is_smt`` and
    explicitly falls back to the SMT reference stepper.  ``validate``
    checks the partition invariants after every step (slow; the verify
    oracles use it).
    """
    for trace in traces:
        if len(trace.ops) < warmup + measure:
            raise ValueError(f"trace {trace.name!r} has {len(trace.ops)} "
                             f"ops; need {warmup + measure}")
    from repro.pipeline.engine import get_engine
    eng = get_engine(engine if engine is not None
                     else getattr(config, "engine", "reference"))
    proc = SMTProcessor(config, traces, validate=validate)
    if prewarm:
        proc.prewarm()
    if warmup:
        eng.run(proc, until_committed=warmup)
        proc.reset_measurement()
    eng.run(proc, until_committed=warmup + measure)
    if validate:
        proc.check_invariants()
    return SMTRun(threads=proc.results(), aggregate=proc.aggregate_result())
