"""Pluggable execution engines driving :class:`Processor`'s cycle loop.

An *engine* owns the main loop of a simulation: the policy of *when* to
evaluate which pipeline stage, and how to account simulated cycles.  Two
interchangeable backends are provided:

* :class:`ReferenceEngine` — delegates to :meth:`Processor.run`, the
  per-cycle stepper every invariant is defined against.  It evaluates
  every stage every stepped cycle and fast-forwards only when the core
  is *totally* quiescent (``progress == 0`` and nothing issue-ready).
* :class:`FastEngine` — a batched event-driven stepper.  It runs the
  same stage algorithms (hand-inlined, stage order preserved:
  events → commit → issue → policy → dispatch → fetch), but

  - skips a stage's evaluation whenever its guard proves the stage
    cannot do observable work this cycle (empty ready heap, incomplete
    ROB head, stalled/empty frontend);
  - generalises the idle jump: when no op is issue-ready, the ROB head
    is incomplete and the frontend is provably blocked, it skips
    straight to the next *interesting* cycle (event-heap head, stall
    release, decode-queue head, policy timer) even while writebacks
    are pending — the regime the reference stepper walks cycle by
    cycle;
  - converts per-cycle accounting into the closed-form delta form that
    :meth:`Processor._advance_accounting` already supports, flushed at
    level transitions and run exit, and batches pure event counters in
    locals.

The engines are **behaviourally identical**: every digest-visible
statistic (see :mod:`repro.verify.digest`) is bit-identical between
them, which the ``engine-equivalence`` oracle asserts over the full
program table.  Deliberately *not* identical are the loop-shape
counters the digest already excludes — ``fetch_stall_cycles`` /
``dispatch_stall_cycles`` (only counted on evaluated cycles), and the
``stall_slots`` CPI-stack attribution, which the fast engine lumps per
accounting segment instead of per cycle.

Soundness of a skip rests on two proof obligations (DESIGN.md §6):

1. *Machine quiescence*: a skipped cycle must be one in which no stage
   can change architectural or timing state.  Completion and wakeup
   travel through the event heap; commit needs a complete ROB head;
   dispatch needs a decoded op, allocation permission and window room;
   fetch needs the stall released, trace ops and buffer space.  Each
   blocked condition is stable until an event fires or a tracked
   release cycle arrives, so jumping to the earliest of those cannot
   skip a cycle in which work was possible.
2. *Policy quiescence*: a resizing policy whose tick returned no action
   and which does not request ``wants_tick_every_cycle`` must guarantee
   its tick is state-neutral on every cycle strictly before
   ``next_timer()``.  All shipped policies honour this contract (and
   any policy that stops allocation keeps ``wants_tick_every_cycle``
   raised while doing so); the engine ticks the policy on every cycle
   it *does* evaluate and never jumps past ``next_timer()``.

Fallback rule: the sanitizer, telemetry probes and the pipeline tracer
observe the machine by shadowing bound methods (``step_cycle``,
``advance``) or hooking per-cycle paths, and the runahead model drives
commit-stage entry points the fast loop does not replicate.  Whenever
any of those are attached — checked per :meth:`FastEngine.run` call,
because telemetry attaches at the warmup/measure boundary — the fast
engine transparently defers to the reference stepper, so probes see
every cycle.  ``fast_forward=False`` (the equivalence-oracle mode)
likewise forces the reference stepper.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush

from repro.debug.errors import DeadlockError
from repro.isa import EXEC_LATENCY, OpClass, REG_INVALID
from repro.memory import AccessPath
from repro.pipeline.core import (
    DECODE_LATENCY,
    FETCH_BUFFER,
    InFlightOp,
    _EV_COMPLETE,
    _EV_WAKE,
    _FU_INDEX,
)

#: EXEC_LATENCY as a dense tuple indexed by OpClass value (dict-free
#: hot-path lookup, same trick as ``_FU_INDEX``).
_EXEC_LAT = tuple(EXEC_LATENCY[OpClass(i)] for i in range(len(OpClass)))
_LOAD_LAT = EXEC_LATENCY[OpClass.LOAD]
_STORE_LAT = EXEC_LATENCY[OpClass.STORE]


class Engine:
    """One main-loop strategy.  Stateless: one instance serves any
    number of processors."""

    name = "?"

    def run(self, proc, until_committed: int,
            max_cycles: int | None = None) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class ReferenceEngine(Engine):
    """The per-cycle stepper (:meth:`Processor.run`), looked up as an
    instance attribute so sanitizer/telemetry bound-method shadowing
    keeps working."""

    name = "reference"

    def run(self, proc, until_committed: int,
            max_cycles: int | None = None) -> None:
        proc.run(until_committed, max_cycles)


def _must_defer(proc) -> bool:
    """True when per-cycle observers (or models the fast loop does not
    replicate) are attached — see the module docstring's fallback rule.

    SMT processors (:mod:`repro.pipeline.smt`) always defer: the fast
    loop hand-inlines the single-thread stages, and the SMT subclass
    overrides most of them (per-thread fetch selection, partitioned
    dispatch, rotating commit), so the explicit fallback to the
    subclass's reference stepper is the correctness contract.
    """
    return (proc.runahead is not None
            or proc.debug is not None
            or proc.telemetry is not None
            or proc.tracer is not None
            or not proc.fast_forward
            or getattr(proc, "is_smt", False)
            or "step_cycle" in proc.__dict__
            or "advance" in proc.__dict__)


class FastEngine(Engine):
    """Batched event-driven stepper (see module docstring)."""

    name = "fast"

    def run(self, proc, until_committed: int,
            max_cycles: int | None = None) -> None:
        # Checked per call: telemetry attaches between the warmup and
        # measurement run() calls of one simulate().
        if _must_defer(proc):
            proc.run(until_committed, max_cycles)
            return
        _fast_run(proc, until_committed, max_cycles)


def _fast_run(proc, until_committed: int, max_cycles: int | None) -> None:
    # The stage bodies below are hand-inlined copies of the reference
    # stages in repro.pipeline.core, minus the runahead branches (a
    # runahead model forces the reference stepper, so no op can carry
    # INV here) and with pure-total counters batched in locals.  Any
    # behavioural edit to a core stage must be mirrored here — the
    # engine-equivalence oracle is the enforcement.
    stats = proc.stats
    activity = stats.activity
    events = proc._events
    rob = proc.rob
    queue = proc._decode_q
    ready = proc._ready
    regmap = proc._map
    pending_stores = proc._pending_stores
    window = proc.window
    wrob = window.rob
    wiq = window.iq
    wlsq = window.lsq
    policy = proc.policy
    inert = proc._policy_inert
    predictor = proc.predictor
    trace_ops = proc.trace.ops
    n_ops = len(trace_ops)
    wrong_path_gen = proc.trace.wrong_path
    width = proc._width
    fu_limits = proc._fu_limit_vec
    fu_used = proc._fu_used_vec
    fu_index = _FU_INDEX
    exec_lat = _EXEC_LAT
    l1i_line = proc._l1i_line_bytes
    l1i_hit = proc._l1i_hit_latency
    resolve_branch = proc._resolve_branch
    hierarchy = proc.hierarchy
    hier_load = hierarchy.load
    hier_store = hierarchy.store
    ifetch = hierarchy.ifetch
    rob_popleft = rob.popleft
    rob_append = rob.append
    queue_append = queue.append
    queue_popleft = queue.popleft
    map_get = regmap.get
    ps_get = pending_stores.get
    dmi_append = stats.demand_miss_intervals.append
    new_op = InFlightOp.__new__
    op_cls = InFlightOp
    correct_path = AccessPath.CORRECT
    wrong_path_acc = AccessPath.WRONG

    # ---- level-dependent mirrors (refreshed at level transitions) ----
    wakeup_delay = proc.extra_wakeup_delay
    asu = proc._alloc_stall_until

    # ---- fetch-state mirrors: live in locals across passes; synced
    # ---- around _resolve_branch (the only external mutator) and at exit
    es = proc._event_seq
    fsu = proc._fetch_stall_until
    wrong_mode = proc._wrong_mode
    trace_idx = proc._trace_idx
    wrong_k = proc._wrong_k
    wrong_base_pc = proc._wrong_base_pc
    last_line = proc._last_fetch_line
    seq = proc._seq
    sa = proc._stop_alloc
    p_wants = False if inert else policy.wants_tick_every_cycle

    # ---- run bookkeeping ----
    committed_total = proc.committed_total
    entry_cycle = proc.cycle
    if max_cycles is None:
        # livelock bound on cycles *elapsed since entry* for the
        # *remaining* commit target (same heuristic as Processor.run)
        limit = entry_cycle + (until_committed - committed_total
                               + 1000) * 600
    else:
        limit = max_cycles

    # ---- batched pure-total counters (flushed at exit) ----
    c_uops = c_loads = c_stores = c_branches = c_mispred = 0
    d_uops = wp_uops = i_uops = sq_stop_alloc = 0
    a_fetches = a_decodes = a_renames = a_iq_writes = a_rob_writes = 0
    a_rob_reads = a_iq_wakeups = a_iq_issues = a_fu_ops = 0
    a_bpred = a_l1i = a_l1d = a_lsq = 0

    # ---- deferred cycle accounting: one segment per level residency ----
    seg_start = entry_cycle
    seg_committed_base = committed_total

    def _flush_segment(seg_end: int, cur_asu: int) -> None:
        """Closed-form accounting for [seg_start, seg_end): level, caps
        and _alloc_stall_until are constant over a segment by
        construction (flushed at every level transition)."""
        nonlocal seg_start, seg_committed_base
        delta = seg_end - seg_start
        if delta > 0:
            stats.cycles += delta
            stats.note_level_cycles(proc.level, delta)
            iq_c, rob_c, lsq_c, iq_m, rob_m, lsq_m = proc._cap_vec
            activity.iq_size_cycles += iq_c * delta
            activity.rob_size_cycles += rob_c * delta
            activity.lsq_size_cycles += lsq_c * delta
            activity.iq_max_cycles += iq_m * delta
            activity.rob_max_cycles += rob_m * delta
            activity.lsq_max_cycles += lsq_m * delta
            if seg_start < cur_asu:
                stats.transition_stall_cycles += (
                    min(seg_end, cur_asu) - seg_start)
            # CPI-stack raw material, digest-excluded: lump the
            # segment's unused commit slots onto the current commit
            # blocker (coarse by design — see DESIGN.md §6)
            slots = width * delta - (committed_total - seg_committed_base)
            if slots > 0:
                stats.note_stall_slots(proc._classify_commit_block(), slots)
        seg_start = seg_end
        seg_committed_base = committed_total

    now = entry_cycle
    try:
        while committed_total < until_committed:
            if now > limit:
                proc.cycle = now
                proc.committed_total = committed_total
                proc._trace_idx = trace_idx
                proc._wrong_mode = wrong_mode
                raise DeadlockError(proc._deadlock_report(
                    f"exceeded {limit} cycles with only "
                    f"{committed_total}/{until_committed} committed "
                    f"(likely livelock)"))
            proc.cycle = now

            # ---- events --------------------------------------------
            if events and events[0][0] <= now:
                while events and events[0][0] <= now:
                    ev = _heappop(events)
                    op = ev[3]
                    if ev[2] == _EV_COMPLETE:
                        if op.squashed or op.complete:
                            continue
                        op.complete = True
                        op.complete_cycle = now
                        uop = op.uop
                        if uop.is_branch and op.branch_token is not None:
                            # sync fetch mirrors around the one kept call
                            # that mutates them
                            proc._fetch_stall_until = fsu
                            proc._wrong_mode = wrong_mode
                            proc._last_fetch_line = last_line
                            resolve_branch(op)
                            fsu = proc._fetch_stall_until
                            wrong_mode = proc._wrong_mode
                            last_line = proc._last_fetch_line
                        if uop.is_store:
                            waiters = op.fwd_waiters
                            if waiters:
                                op.fwd_waiters = None
                                t = now + 1
                                for load in waiters:
                                    if not load.squashed:
                                        es += 1
                                        _heappush(events,
                                                  (t, es, _EV_COMPLETE,
                                                   load))
                        latency = now - op.issue_cycle
                        if latency < 1:
                            latency = 1
                        delay = wakeup_delay + 1 - latency
                        a_iq_wakeups += 1
                        if delay <= 0:
                            op.woken_at = now
                            consumers = op.consumers
                            if consumers:
                                op.consumers = None
                                inv = op.inv
                                for consumer in consumers:
                                    if consumer.squashed or consumer.issued:
                                        continue
                                    if inv:
                                        consumer.inherit_inv = True
                                    n = consumer.pending_srcs - 1
                                    consumer.pending_srcs = n
                                    if n == 0:
                                        consumer.ready_cycle = now
                                        _heappush(ready,
                                                  (consumer.seq, consumer))
                        else:
                            op.woken_at = woken = now + delay
                            es += 1
                            _heappush(events, (woken, es, _EV_WAKE, op))
                    else:   # _EV_WAKE (_EV_RA_EXIT: runahead defers)
                        consumers = op.consumers
                        if consumers:
                            op.consumers = None
                            inv = op.inv
                            for consumer in consumers:
                                if consumer.squashed or consumer.issued:
                                    continue
                                if inv:
                                    consumer.inherit_inv = True
                                n = consumer.pending_srcs - 1
                                consumer.pending_srcs = n
                                if n == 0:
                                    consumer.ready_cycle = now
                                    _heappush(ready, (consumer.seq, consumer))

            # ---- commit --------------------------------------------
            if rob:
                op = rob[0]
                if op.complete:
                    committed = 0
                    while True:
                        rob_popleft()
                        wrob.occupancy -= 1
                        wrob.release_count += 1
                        uop = op.uop
                        if uop.is_mem:
                            wlsq.occupancy -= 1
                            wlsq.release_count += 1
                        committed_total += 1
                        c_uops += 1
                        if uop.is_load:
                            c_loads += 1
                        elif uop.is_store:
                            c_stores += 1
                            word = uop.addr & ~7
                            if ps_get(word) is op:
                                del pending_stores[word]
                            hier_store(uop.addr, now, correct_path)
                        elif uop.is_branch:
                            c_branches += 1
                            if op.mispredicted:
                                c_mispred += 1
                                total_c = stats.committed_uops + c_uops
                                stats.mispredict_distances.append(
                                    total_c - stats._last_mispredict_commit)
                                stats._last_mispredict_commit = total_c
                        a_rob_reads += 1
                        committed += 1
                        if committed >= width or not rob:
                            break
                        op = rob[0]
                        if not op.complete:
                            break
                    window.committed += committed

            # ---- issue ---------------------------------------------
            if ready:
                issued = 0
                scans = 0
                fu_used[0] = fu_used[1] = fu_used[2] = fu_used[3] = \
                    fu_used[4] = 0
                deferred = None
                while ready and issued < width and scans < 32:
                    scans += 1
                    item = _heappop(ready)
                    op = item[1]
                    if op.squashed or op.issued:
                        continue
                    if op.ready_cycle > now:
                        if deferred is None:
                            deferred = [item]
                        else:
                            deferred.append(item)
                        continue
                    uop = op.uop
                    pool = fu_index[uop.op]
                    if fu_used[pool] >= fu_limits[pool]:
                        if deferred is None:
                            deferred = [item]
                        else:
                            deferred.append(item)
                        continue
                    fu_used[pool] += 1
                    op.issued = True
                    op.issue_cycle = now
                    if op.in_iq:
                        wiq.occupancy -= 1
                        wiq.release_count += 1
                        op.in_iq = False
                    i_uops += 1
                    a_iq_issues += 1
                    a_fu_ops += 1
                    if op.inherit_inv:
                        op.inv = True
                    if uop.is_load:
                        op.addr_known_cycle = addr_ready = now + _LOAD_LAT
                        a_lsq += 1
                        word = uop.addr & ~7
                        store = ps_get(word)
                        if (store is not None and not store.squashed
                                and store.seq < op.seq):
                            op.forwarded = True
                            if store.complete:
                                t = store.complete_cycle
                                if t < addr_ready:
                                    t = addr_ready
                                es += 1
                                _heappush(events,
                                          (t + 1, es, _EV_COMPLETE, op))
                            else:
                                fw = store.fwd_waiters
                                if fw is None:
                                    store.fwd_waiters = [op]
                                else:
                                    fw.append(op)
                        else:
                            a_l1d += 1
                            result = hier_load(
                                uop.addr, addr_ready, uop.pc,
                                wrong_path_acc if op.wrong_path
                                else correct_path)
                            cc = result.complete_cycle
                            op.complete_cycle = cc
                            if result.l2_miss:
                                op.l2_miss = True
                                if not op.wrong_path:
                                    dmi_append((addr_ready, cc))
                            es += 1
                            _heappush(events, (cc, es, _EV_COMPLETE, op))
                    elif uop.is_store:
                        op.addr_known_cycle = t = now + _STORE_LAT
                        es += 1
                        _heappush(events, (t, es, _EV_COMPLETE, op))
                    else:
                        es += 1
                        _heappush(events,
                                  (now + exec_lat[uop.op], es,
                                   _EV_COMPLETE, op))
                    issued += 1
                if deferred:
                    for item in deferred:
                        _heappush(ready, item)

            # ---- policy --------------------------------------------
            if not inert:
                decision = policy.tick(now, window)
                sa = decision.stop_alloc
                proc._stop_alloc = sa
                if sa:
                    sq_stop_alloc += 1
                new_level = decision.new_level
                if new_level is not None and new_level != proc.level:
                    _flush_segment(now, asu)
                    proc._apply_level(new_level)
                    asu = proc._alloc_stall_until
                    wakeup_delay = proc.extra_wakeup_delay
                # wants_tick_every_cycle is a property; it only changes
                # when the policy's own tick mutates its state, so one
                # read per tick is exact
                p_wants = policy.wants_tick_every_cycle

            # ---- dispatch ------------------------------------------
            if queue and now >= asu and not sa:
                ready_at, op = queue[0]
                if ready_at <= now:
                    dispatched = 0
                    while True:
                        uop = op.uop
                        is_mem = uop.is_mem
                        if (wrob.capacity - wrob.occupancy < 1
                                or wiq.capacity - wiq.occupancy < 1
                                or (is_mem
                                    and wlsq.capacity - wlsq.occupancy < 1)):
                            if wrob.capacity - wrob.occupancy < 1:
                                wrob.full_events += 1
                            if wiq.capacity - wiq.occupancy < 1:
                                wiq.full_events += 1
                            if (is_mem
                                    and wlsq.capacity - wlsq.occupancy < 1):
                                wlsq.full_events += 1
                            break
                        queue_popleft()
                        op.dispatch_cycle = now
                        o = wrob.occupancy + 1
                        wrob.occupancy = o
                        wrob.alloc_count += 1
                        if o > wrob.peak_occupancy:
                            wrob.peak_occupancy = o
                        o = wiq.occupancy + 1
                        wiq.occupancy = o
                        wiq.alloc_count += 1
                        if o > wiq.peak_occupancy:
                            wiq.peak_occupancy = o
                        op.in_iq = True
                        if is_mem:
                            o = wlsq.occupancy + 1
                            wlsq.occupancy = o
                            wlsq.alloc_count += 1
                            if o > wlsq.peak_occupancy:
                                wlsq.peak_occupancy = o
                        d_uops += 1
                        if op.wrong_path:
                            wp_uops += 1
                        a_renames += 1
                        a_iq_writes += 1
                        a_rob_writes += 1
                        pending = 0
                        for src in uop.srcs:
                            producer = map_get(src)
                            if producer is None or producer.squashed:
                                continue
                            w = producer.woken_at
                            if 0 <= w <= now:
                                if producer.inv:
                                    op.inherit_inv = True
                                continue
                            plist = producer.consumers
                            if plist is None:
                                producer.consumers = [op]
                            else:
                                plist.append(op)
                            pending += 1
                        op.pending_srcs = pending
                        op.ready_cycle = now + 1
                        if pending == 0:
                            _heappush(ready, (op.seq, op))
                        dst = uop.dst
                        if dst != REG_INVALID:
                            regmap[dst] = op
                        rob_append(op)
                        if uop.is_store:
                            pending_stores[uop.addr & ~7] = op
                        dispatched += 1
                        if dispatched >= width or not queue:
                            break
                        ready_at, op = queue[0]
                        if ready_at > now:
                            break

            # ---- fetch ---------------------------------------------
            if (now >= fsu and len(queue) < FETCH_BUFFER
                    and (wrong_mode or trace_idx < n_ops)):
                fetched = 0
                while fetched < width and len(queue) < FETCH_BUFFER:
                    if wrong_mode:
                        uop = wrong_path_gen.op_at(wrong_base_pc, wrong_k)
                        t_idx = -1
                    else:
                        if trace_idx >= n_ops:
                            break
                        uop = trace_ops[trace_idx]
                        t_idx = trace_idx
                    pc = uop.pc
                    line = pc - pc % l1i_line
                    if line != last_line:
                        a_l1i += 1
                        done = ifetch(pc, now)
                        last_line = line
                        if done > now + l1i_hit:
                            fsu = done
                            break
                    seq += 1
                    op = new_op(op_cls)
                    op.seq = seq
                    op.uop = uop
                    op.trace_idx = t_idx
                    op.wrong_path = wrong_mode
                    op.pending_srcs = 0
                    op.consumers = None
                    op.ready_cycle = 0
                    op.issued = False
                    op.complete = False
                    op.squashed = False
                    op.in_iq = False
                    op.issue_cycle = -1
                    op.complete_cycle = -1
                    op.woken_at = -1
                    op.branch_token = None
                    op.mispredicted = False
                    op.l2_miss = False
                    op.inv = False
                    op.inherit_inv = False
                    op.addr_known_cycle = -1
                    op.forwarded = False
                    op.fwd_waiters = None
                    op.fetch_cycle = now
                    op.dispatch_cycle = -1
                    a_fetches += 1
                    a_decodes += 1
                    end_cycle = False
                    if wrong_mode:
                        wrong_k += 1
                        end_cycle = uop.is_branch
                    elif uop.is_branch:
                        a_bpred += 1
                        pred_taken, pred_target, token = predictor.predict(
                            pc, pc + 4)
                        op.branch_token = token
                        trace_idx += 1
                        actual = uop.taken
                        mispredicted = (pred_taken != actual
                                        or (actual
                                            and pred_target != uop.target))
                        op.mispredicted = mispredicted
                        if mispredicted:
                            wrong_mode = True
                            proc._wrong_branch = op
                            wrong_base_pc = (pred_target if pred_taken
                                             else pc + 4)
                            wrong_k = 0
                        end_cycle = pred_taken
                    else:
                        trace_idx += 1
                    queue_append((now + DECODE_LATENCY, op))
                    fetched += 1
                    if end_cycle:
                        break

            # ---- exit conditions -----------------------------------
            if (not wrong_mode and trace_idx >= n_ops
                    and not rob and not queue):
                break   # trace drained; like the reference, the final
                #         evaluated cycle is not accounted
            if committed_total >= until_committed:
                now += 1
                break

            # ---- stepping decision ---------------------------------
            # step by one while any stage can make progress next cycle
            if ready or p_wants or (rob and rob[0].complete):
                now += 1
                continue
            if (now >= fsu and len(queue) < FETCH_BUFFER
                    and (wrong_mode or trace_idx < n_ops)):
                now += 1
                continue
            if queue and not sa and now >= asu:
                ready_at, head = queue[0]
                if ready_at <= now:
                    is_mem = head.uop.is_mem
                    if (wrob.capacity - wrob.occupancy >= 1
                            and wiq.capacity - wiq.occupancy >= 1
                            and (not is_mem
                                 or wlsq.capacity - wlsq.occupancy >= 1)):
                        now += 1
                        continue
            # drained: jump to the next interesting cycle
            target = events[0][0] if events else -1
            if fsu > now and (target < 0 or fsu < target):
                target = fsu
            if asu > now and (target < 0 or asu < target):
                target = asu
            if queue:
                head_ready = queue[0][0]
                if head_ready > now and (target < 0 or head_ready < target):
                    target = head_ready
            if not inert:
                timer = policy.next_timer()
                if (timer is not None and timer > now
                        and (target < 0 or timer < target)):
                    target = timer
            if target < 0:
                proc.cycle = now
                proc.committed_total = committed_total
                proc._trace_idx = trace_idx
                proc._wrong_mode = wrong_mode
                raise DeadlockError(proc._deadlock_report(
                    "no events, no timers, nothing in flight"))
            now = target
    finally:
        proc.cycle = now
        proc.committed_total = committed_total
        proc._event_seq = es
        proc._fetch_stall_until = fsu
        proc._wrong_mode = wrong_mode
        proc._trace_idx = trace_idx
        proc._wrong_k = wrong_k
        proc._wrong_base_pc = wrong_base_pc
        proc._last_fetch_line = last_line
        proc._seq = seq
        _flush_segment(now, asu)
        stats.committed_uops += c_uops
        stats.committed_loads += c_loads
        stats.committed_stores += c_stores
        stats.committed_branches += c_branches
        stats.committed_mispredicts += c_mispred
        stats.dispatched_uops += d_uops
        stats.wrong_path_uops += wp_uops
        stats.issued_uops += i_uops
        stats.stop_alloc_cycles += sq_stop_alloc
        activity.fetches += a_fetches
        activity.decodes += a_decodes
        activity.renames += a_renames
        activity.iq_writes += a_iq_writes
        activity.rob_writes += a_rob_writes
        activity.rob_reads += a_rob_reads
        activity.iq_wakeups += a_iq_wakeups
        activity.iq_issues += a_iq_issues
        activity.fu_ops += a_fu_ops
        activity.bpred_lookups += a_bpred
        activity.l1i_accesses += a_l1i
        activity.l1d_accesses += a_l1d
        activity.lsq_searches += a_lsq


_ENGINES: dict[str, Engine] = {
    "reference": ReferenceEngine(),
    "fast": FastEngine(),
}

#: Engine names accepted by ``simulate(..., engine=)`` and the CLIs.
ENGINE_NAMES: tuple[str, ...] = tuple(_ENGINES)


def get_engine(name: str) -> Engine:
    """Resolve an engine by name (``reference`` or ``fast``)."""
    try:
        return _ENGINES[name]
    except KeyError:
        known = ", ".join(_ENGINES)
        raise ValueError(f"unknown engine {name!r} (known: {known})") \
            from None
