"""Cycle-level out-of-order processor model.

This is the SimpleScalar-replacement substrate of the reproduction: a
4-wide P6-style superscalar core with

* fetch from a dynamic trace, gshare/BTB prediction, taken-branch fetch
  bubbles, I-cache timing and synthesized wrong-path fetch after a
  misprediction;
* rename through a map table onto ROB entries (P6: each ROB entry holds
  the physical register);
* dispatch into the resizable ROB / IQ / LSQ window resources;
* oldest-first wakeup/select issue with a *pipeline-depth-dependent*
  wakeup delay: at IQ depth ``d``, dependent instructions cannot issue
  back-to-back — the consumer sees the broadcast ``d - 1`` cycles late
  (the paper's central ILP cost of a large window);
* function-unit contention per Table 1, load/store queue with
  store→load forwarding and conservative memory disambiguation;
* non-blocking memory access through the cache hierarchy (MLP!);
* in-order commit, branch misprediction recovery with a level-dependent
  penalty, and the level-transition machinery of the resizing scheme.

The main loop is cycle-driven but *fast-forwards* over provably idle
cycles (long memory stalls), which keeps memory-bound simulations fast
without changing observable timing.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappop as _heappop, heappush as _heappush
from typing import TYPE_CHECKING

from repro.config import ModelKind, ProcessorConfig
from repro.core.policies import ResizingPolicy, StaticPolicy
from repro.core.resizing import MLPAwarePolicy
from repro.debug.errors import DeadlockError
from repro.isa import EXEC_LATENCY, MicroOp, OpClass, REG_INVALID
from repro.memory import AccessPath, MemoryHierarchy
from repro.frontend import BranchPredictor
from repro.pipeline.resources import WindowSet
from repro.stats import SimStats, SimulationResult, mlp_from_intervals

if TYPE_CHECKING:
    from repro.workloads.trace import Trace

#: fetch-to-dispatch latency in cycles (decode/rename front-end depth).
DECODE_LATENCY = 3
#: fetch/decode buffer capacity in micro-ops.
FETCH_BUFFER = 24

#: Version tag of the simulator's *timing behaviour*.  The on-disk result
#: cache (:mod:`repro.experiments.cache`) keys on it, so bump it whenever
#: a change can alter any simulated cycle count; host-speed optimisations
#: that leave timing identical must NOT bump it.
SIM_VERSION = "3"   # 3: comparator policies fixed (commit wiring, rate
#                        denominators) — contribution/occupancy runs change

# function-unit pools
_FU_POOL = {
    OpClass.NOP: "int_alu",
    OpClass.IALU: "int_alu",
    OpClass.BRANCH: "int_alu",
    OpClass.IMUL: "int_mul_div",
    OpClass.IDIV: "int_mul_div",
    OpClass.FPALU: "fp_alu",
    OpClass.FPMUL: "fp_mul_div",
    OpClass.FPDIV: "fp_mul_div",
    OpClass.LOAD: "mem_ports",
    OpClass.STORE: "mem_ports",
}

#: pool order for the per-cycle usage vector (indices into _FU_INDEX)
_FU_POOLS = ("int_alu", "int_mul_div", "mem_ports", "fp_alu", "fp_mul_div")
#: OpClass (an IntEnum) -> pool index, for dict-free hot-path lookups
_FU_INDEX = tuple(_FU_POOLS.index(_FU_POOL[OpClass(i)])
                  for i in range(len(OpClass)))

# event kinds
_EV_COMPLETE = 0
_EV_WAKE = 1
_EV_RA_EXIT = 2


class InFlightOp:
    """Pipeline state of one in-flight micro-op."""

    __slots__ = (
        "seq", "uop", "trace_idx", "wrong_path",
        "pending_srcs", "consumers", "ready_cycle",
        "issued", "complete", "squashed", "in_iq",
        "issue_cycle", "complete_cycle", "woken_at",
        "branch_token", "mispredicted", "l2_miss",
        "inv", "inherit_inv", "addr_known_cycle", "forwarded",
        "fwd_waiters", "fetch_cycle", "dispatch_cycle",
    )

    def __init__(self, seq: int, uop: MicroOp, trace_idx: int,
                 wrong_path: bool) -> None:
        self.seq = seq
        self.uop = uop
        self.trace_idx = trace_idx
        self.wrong_path = wrong_path
        self.pending_srcs = 0
        self.consumers: list[InFlightOp] | None = None
        self.ready_cycle = 0
        self.issued = False
        self.complete = False
        self.squashed = False
        self.in_iq = False
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.woken_at = -1        # -1: not yet known
        self.branch_token = None
        self.mispredicted = False
        self.l2_miss = False
        self.inv = False          # runahead INV result
        self.inherit_inv = False  # a source was INV
        self.addr_known_cycle = -1
        self.forwarded = False
        self.fwd_waiters: list[InFlightOp] | None = None
        self.fetch_cycle = -1
        self.dispatch_cycle = -1

    def __repr__(self) -> str:
        flags = "".join(c for c, f in (
            ("W", self.wrong_path), ("I", self.issued), ("C", self.complete),
            ("X", self.squashed), ("V", self.inv)) if f)
        return f"<op#{self.seq} {self.uop.op.name} {flags}>"


class Processor:
    """One simulated processor instance running one trace."""

    #: SMT subclasses set True; the fast engine checks this to defer to
    #: the reference stepper (see :mod:`repro.pipeline.smt`)
    is_smt = False

    def __init__(self, config: ProcessorConfig, trace: "Trace",
                 policy: ResizingPolicy | None = None,
                 hierarchy: MemoryHierarchy | None = None,
                 sanitize: bool = False) -> None:
        """``hierarchy`` may be injected to share L2/DRAM components
        between cores (see :mod:`repro.multicore`).

        ``sanitize`` attaches the :mod:`repro.debug` invariant sanitizer
        and cycle-event trace.  The flag is resolved here, once: when it
        is False nothing is installed and the per-cycle paths carry no
        debug branches at all."""
        self.config = config
        self.trace = trace
        self.stats = SimStats()
        self.hierarchy = hierarchy or MemoryHierarchy(config)
        self.predictor = BranchPredictor(config.branch)
        self.ideal = config.model is ModelKind.IDEAL

        if policy is not None:
            self.policy = policy
        elif config.model is ModelKind.DYNAMIC:
            self.policy = MLPAwarePolicy(
                max_level=config.level,
                memory_latency=config.memory.min_latency)
        else:
            self.policy = StaticPolicy(config.level)
        self.level = self.policy.level
        # config.level is the fixed level for FIXED/IDEAL and the maximum
        # (= physically provisioned) level for DYNAMIC, so it bounds the
        # physical resources in every model.
        self.window = WindowSet(config.levels, self.level,
                                max_level=max(config.level, self.level))
        self._update_level_params()

        self.hierarchy.add_l2_miss_listener(self._on_l2_miss)

        # timing state
        self.cycle = 0
        self.committed_total = 0
        self._seq = 0
        self._events: list[tuple[int, int, int, object]] = []
        self._event_seq = 0

        # fetch state
        self._trace_idx = 0
        self._wrong_mode = False
        self._wrong_branch: InFlightOp | None = None
        self._wrong_base_pc = 0
        self._wrong_k = 0
        self._fetch_stall_until = 0
        self._last_fetch_line = -1
        self._decode_q: deque[tuple[int, InFlightOp]] = deque()

        # backend state
        self._map: dict[int, InFlightOp] = {}
        self.rob: deque[InFlightOp] = deque()
        self._ready: list[tuple[int, InFlightOp]] = []
        #: word address -> youngest in-flight store to that word, kept
        #: from dispatch to commit (perfect memory disambiguation, as in
        #: the paper's SimpleScalar substrate: a load only orders against
        #: older stores to the *same* address, never against unrelated
        #: stores with unresolved addresses).
        self._pending_stores: dict[int, InFlightOp] = {}
        self._fu_limits = {
            "int_alu": config.fu.int_alu,
            "int_mul_div": config.fu.int_mul_div,
            "mem_ports": config.fu.mem_ports,
            "fp_alu": config.fu.fp_alu,
            "fp_mul_div": config.fu.fp_mul_div,
        }
        # hot-path vectors/scalars (indexed by _FU_INDEX / hoisted out of
        # the per-cycle stages; FU usage is reset each issue cycle)
        self._fu_limit_vec = [self._fu_limits[p] for p in _FU_POOLS]
        self._fu_used_vec = [0] * len(_FU_POOLS)
        self._width = config.width
        self._l1i_line_bytes = config.l1i.line_bytes
        self._l1i_hit_latency = config.l1i.hit_latency
        #: a StaticPolicy — or any policy pinned to a constant level via
        #: ResizingPolicy.pin() — never resizes or stops allocation, so
        #: its per-cycle tick (and decision allocation), miss
        #: notifications and timers are all skipped whole.  This is the
        #: pin-equivalence hook: a pinned run takes exactly the code
        #: paths of a static one (repro.verify asserts bit-identity).
        self._policy_inert = (type(self.policy) is StaticPolicy
                              or self.policy.pinned_level is not None)
        self._refresh_capacity_cache()

        # resizing state
        self._alloc_stall_until = 0
        self._stop_alloc = False
        self._last_stall_reason: str | None = None
        #: True when the last fast-forward target was set by a policy
        #: timer that fired strictly before any machine event — the
        #: jumped-over commit slots belong to the resize controller,
        #: not to whatever stalled commit before the jump.
        self._ff_timer_jump = False

        #: optional PipelineTracer recording per-op lifecycles
        self.tracer = None
        #: optional telemetry probe (set by TelemetryProbe.attach).  Like
        #: ``debug``, this stays None on a plain run and no per-cycle code
        #: consults it — the probe installs itself by shadowing bound
        #: methods, so telemetry-off costs nothing (repro.telemetry).
        self.telemetry = None
        #: fast-forward over provably idle cycles (disable to validate
        #: that the optimisation never changes observable timing)
        self.fast_forward = True
        # runahead engine (installed for the RUNAHEAD model)
        self.runahead = None
        if config.model is ModelKind.RUNAHEAD:
            from repro.runahead import RunaheadEngine
            self.runahead = RunaheadEngine(self)
        #: optional debug harness (invariant sanitizer + event trace).
        #: Resolved once, here: with ``sanitize=False`` this stays None
        #: and no per-cycle code ever consults it.
        self.debug = None
        if sanitize:
            from repro.debug import Sanitizer
            self.debug = Sanitizer(self)

    # ------------------------------------------------------------------
    # level handling

    def _update_level_params(self) -> None:
        cfg = self.config.level_config(self.level)
        if self.ideal:
            self.extra_wakeup_delay = 0
            self.extra_branch_penalty = 0
        else:
            self.extra_wakeup_delay = cfg.extra_wakeup_delay
            self.extra_branch_penalty = cfg.extra_branch_penalty

    def _refresh_capacity_cache(self) -> None:
        """Capacities only change at level transitions; cache them so the
        per-cycle accounting avoids six attribute chains."""
        window = self.window
        self._cap_vec = (window.iq.capacity, window.rob.capacity,
                         window.lsq.capacity, window.iq.max_capacity,
                         window.rob.max_capacity, window.lsq.max_capacity)

    def _apply_level(self, new_level: int) -> None:
        if new_level > self.level:
            self.stats.enlarge_transitions += 1
        else:
            self.stats.shrink_transitions += 1
        self.stats.level_transitions.append((self.cycle, new_level))
        self.level = new_level
        self.window.resize_to(new_level)
        self._update_level_params()
        self._refresh_capacity_cache()
        self._alloc_stall_until = max(
            self._alloc_stall_until,
            self.cycle + self.config.transition_penalty)

    def _on_l2_miss(self, detect_cycle: int) -> None:
        if not self._policy_inert:
            self.policy.on_l2_miss(detect_cycle)
        self.stats.l2_miss_cycles.append(detect_cycle)

    # ------------------------------------------------------------------
    # event machinery

    def _schedule(self, cycle: int, kind: int, payload: object) -> None:
        self._event_seq += 1
        _heappush(self._events, (cycle, self._event_seq, kind, payload))

    def _process_events(self) -> int:
        processed = 0
        events = self._events
        while events and events[0][0] <= self.cycle:
            __, ___, kind, payload = _heappop(events)
            processed += 1
            if kind == _EV_COMPLETE:
                self._complete_op(payload)
            elif kind == _EV_WAKE:
                self._wake_consumers(payload)
            elif kind == _EV_RA_EXIT:
                self.runahead.exit_runahead(self.cycle)
        return processed

    def _complete_op(self, op: InFlightOp) -> None:
        if op.squashed or op.complete:
            return
        op.complete = True
        op.complete_cycle = self.cycle
        if op.uop.is_branch and op.branch_token is not None:
            self._resolve_branch(op)
        # A pipelined wakeup/select loop of depth d forbids back-to-back
        # dependent issue: the consumer cannot issue before
        # producer_issue + d.  For producers whose execution latency is
        # at least d the broadcast has already caught up, so only
        # short-latency producers (the ILP-critical IALU chains) pay.
        if op.uop.is_store:
            self._store_executed(op)
        latency = max(1, self.cycle - op.issue_cycle)
        delay = max(0, self.extra_wakeup_delay + 1 - latency)
        op.woken_at = self.cycle + delay
        self.stats.activity.iq_wakeups += 1
        if delay == 0:
            self._wake_consumers(op)
        else:
            self._schedule(op.woken_at, _EV_WAKE, op)

    def _wake_consumers(self, op: InFlightOp) -> None:
        consumers = op.consumers
        if not consumers:
            return
        op.consumers = None
        now = self.cycle
        ready = self._ready
        inv = op.inv
        for consumer in consumers:
            if consumer.squashed or consumer.issued:
                continue
            if inv:
                consumer.inherit_inv = True
            consumer.pending_srcs -= 1
            if consumer.pending_srcs == 0:
                consumer.ready_cycle = now
                _heappush(ready, (consumer.seq, consumer))

    # ------------------------------------------------------------------
    # branch resolution

    def _resolve_branch(self, op: InFlightOp) -> None:
        uop = op.uop
        self.predictor.resolve(op.branch_token, uop.taken, uop.target)
        if not op.mispredicted:
            return
        self._squash_after(op.seq)
        if self._wrong_branch is op:
            self._wrong_mode = False
            self._wrong_branch = None
        penalty = (self.config.branch.mispredict_penalty
                   + self.extra_branch_penalty)
        self._fetch_stall_until = max(self._fetch_stall_until,
                                      self.cycle + penalty)
        self._last_fetch_line = -1

    def _squash_after(self, after_seq: int) -> None:
        """Remove every op younger than ``after_seq`` from the machine."""
        rob = self.rob
        window = self.window
        while rob and rob[-1].seq > after_seq:
            op = rob.pop()
            op.squashed = True
            window.rob.release()
            if op.in_iq and not op.issued:
                window.iq.release()
            if op.uop.is_mem:
                window.lsq.release()
            self.stats.squashed_uops += 1
        for __, op in self._decode_q:
            op.squashed = True
            self.stats.squashed_uops += 1
        self._decode_q.clear()
        # Rebuild the map table and the pending-store table from the
        # surviving ROB contents.
        self._map.clear()
        self._pending_stores.clear()
        for op in rob:
            dst = op.uop.dst
            if dst != REG_INVALID:
                self._map[dst] = op
            if op.uop.is_store:
                self._pending_stores[op.uop.addr & ~7] = op

    # ------------------------------------------------------------------
    # commit

    def _commit_stage(self) -> int:
        committed = 0
        rob = self.rob
        width = self._width
        window = self.window
        rob_release = window.rob.release
        lsq_release = window.lsq.release
        engine = self.runahead
        in_runahead = engine is not None and engine.active
        while rob and committed < width:
            op = rob[0]
            if in_runahead:
                if not engine.can_pseudo_retire(op):
                    break
                rob.popleft()
                engine.pseudo_retire(op, self.cycle)
                rob_release()
                if op.uop.is_mem:
                    lsq_release()
                committed += 1
                continue
            if not op.complete:
                if (engine is not None and op.uop.is_load and op.l2_miss
                        and op.issued):
                    if engine.consider_entry(op, self.cycle):
                        in_runahead = True
                        continue
                break
            rob.popleft()
            rob_release()
            if op.uop.is_mem:
                lsq_release()
            self._commit_op(op)
            committed += 1
        if committed:
            # keep the WindowSet's commit counter current: feedback
            # policies (ContributionPolicy) read their commit-throughput
            # signal from it at tick time
            window.committed += committed
        if committed < width:
            reason = self._classify_commit_block()
            self.stats.note_stall_slots(reason, width - committed)
            self._last_stall_reason = reason
        else:
            self._last_stall_reason = None
        return committed

    def _classify_commit_block(self) -> str:
        """Why the ROB head could not commit this cycle (CPI stack)."""
        if not self.rob:
            return "frontend"
        head = self.rob[0]
        uop = head.uop
        if head.issued:
            if uop.is_load:
                if head.l2_miss:
                    return "mem_dram"
                if head.forwarded:
                    return "mem_forward"
                return "mem_cache"
            return "exec"
        if head.pending_srcs > 0:
            return "deps"
        if head.ready_cycle >= self.cycle:
            # woke up this very cycle: the wait was the dependence chain
            # (commit runs before issue within a cycle)
            return "deps"
        return "issue"

    def _commit_op(self, op: InFlightOp) -> None:
        uop = op.uop
        self.committed_total += 1
        if self.tracer is not None:
            self.tracer.on_commit(op, self.cycle)
        stats = self.stats
        stats.committed_uops += 1
        if uop.is_load:
            stats.committed_loads += 1
        elif uop.is_store:
            stats.committed_stores += 1
            word = uop.addr & ~7
            if self._pending_stores.get(word) is op:
                del self._pending_stores[word]
            self.hierarchy.store(uop.addr, self.cycle, AccessPath.CORRECT)
        elif uop.is_branch:
            stats.committed_branches += 1
            if op.mispredicted:
                stats.committed_mispredicts += 1
                stats.note_mispredict_commit()
        stats.activity.rob_reads += 1

    # ------------------------------------------------------------------
    # issue

    def _issue_stage(self) -> int:
        ready = self._ready
        if not ready:
            return 0
        issued = 0
        budget = self._width
        fu_used = self._fu_used_vec
        fu_used[0] = fu_used[1] = fu_used[2] = fu_used[3] = fu_used[4] = 0
        fu_limits = self._fu_limit_vec
        deferred: list[tuple[int, InFlightOp]] = []
        defer = deferred.append
        scans = 0
        now = self.cycle
        while ready and issued < budget and scans < 32:
            scans += 1
            item = _heappop(ready)
            op = item[1]
            if op.squashed or op.issued:
                continue
            if op.ready_cycle > now:
                defer(item)
                continue
            pool = _FU_INDEX[op.uop.op]
            if fu_used[pool] >= fu_limits[pool]:
                defer(item)
                continue
            fu_used[pool] += 1
            self._issue_op(op)
            issued += 1
        for item in deferred:
            _heappush(ready, item)
        return issued

    def _issue_op(self, op: InFlightOp) -> None:
        now = self.cycle
        op.issued = True
        op.issue_cycle = now
        if op.in_iq:
            self.window.iq.release()
            op.in_iq = False
        stats = self.stats
        stats.issued_uops += 1
        stats.activity.iq_issues += 1
        stats.activity.fu_ops += 1
        if op.inherit_inv:
            op.inv = True
        uop = op.uop
        if uop.is_load:
            self._issue_load(op)
        elif uop.is_store:
            self._issue_store(op)
        else:
            latency = EXEC_LATENCY[uop.op]
            self._schedule(now + latency, _EV_COMPLETE, op)

    # ----- loads / stores --------------------------------------------

    def _issue_load(self, op: InFlightOp) -> None:
        addr_ready = self.cycle + EXEC_LATENCY[OpClass.LOAD]
        op.addr_known_cycle = addr_ready
        self.stats.activity.lsq_searches += 1
        if op.inv:
            # Runahead INV address: produce INV without touching memory.
            self._schedule(addr_ready + 1, _EV_COMPLETE, op)
            return
        word = op.uop.addr & ~7
        store = self._pending_stores.get(word)
        if store is not None and not store.squashed and store.seq < op.seq:
            op.forwarded = True
            if self.runahead is not None and store.inv:
                op.inv = True
            if store.complete:
                self._schedule(max(addr_ready, store.complete_cycle) + 1,
                               _EV_COMPLETE, op)
            else:
                # Forward once the producing store has executed.
                if store.fwd_waiters is None:
                    store.fwd_waiters = [op]
                else:
                    store.fwd_waiters.append(op)
            return
        if (self.runahead is not None and self.runahead.active
                and self.runahead.cache_hit(word)):
            op.forwarded = True
            self._schedule(addr_ready + 1, _EV_COMPLETE, op)
            return
        self._start_memory_access(op, addr_ready)

    def _start_memory_access(self, op: InFlightOp, start: int) -> None:
        uop = op.uop
        path = AccessPath.WRONG if op.wrong_path else AccessPath.CORRECT
        engine = self.runahead
        if engine is not None and engine.active and not engine.may_issue_fill(
                self.hierarchy, start):
            # Miss buffers saturated / episode fill budget exhausted:
            # drop the runahead fill and INV the load.
            op.inv = True
            self._schedule(start + 2, _EV_COMPLETE, op)
            return
        self.stats.activity.l1d_accesses += 1
        result = self.hierarchy.load(uop.addr, start, uop.pc, path)
        # Record the scheduled fill time eagerly: the runahead engine needs
        # it to time its exit while the load is still incomplete.
        op.complete_cycle = result.complete_cycle
        if result.l2_miss:
            op.l2_miss = True
            if not op.wrong_path:
                self.stats.demand_miss_intervals.append(
                    (start, result.complete_cycle))
        engine = self.runahead
        if engine is not None and engine.active:
            # Runahead: a long-latency load (a fresh L2 miss, or a merge
            # into a line another miss is still fetching) gets an INV
            # result immediately while its fill proceeds underneath (the
            # prefetching effect).  Blocking on it would stall
            # pseudo-retirement for the rest of the episode.
            long_latency = (result.complete_cycle - start
                            > self.config.l2.hit_latency + 8)
            if result.l2_miss or long_latency:
                op.inv = True
                if result.l2_miss:
                    engine.note_episode_miss()
                self._schedule(start + 2, _EV_COMPLETE, op)
                return
        self._schedule(result.complete_cycle, _EV_COMPLETE, op)

    def _issue_store(self, op: InFlightOp) -> None:
        addr_ready = self.cycle + EXEC_LATENCY[OpClass.STORE]
        op.addr_known_cycle = addr_ready
        engine = self.runahead
        if engine is not None and engine.active and not op.inv:
            engine.cache_write(op.uop.addr & ~7)
        self._schedule(addr_ready, _EV_COMPLETE, op)

    def _store_executed(self, op: InFlightOp) -> None:
        """A store finished executing: satisfy loads waiting to forward."""
        waiters = op.fwd_waiters
        if not waiters:
            return
        op.fwd_waiters = None
        now = self.cycle
        for load in waiters:
            if load.squashed:
                continue
            self._schedule(now + 1, _EV_COMPLETE, load)

    # ------------------------------------------------------------------
    # dispatch

    def _dispatch_stage(self) -> int:
        if self.cycle < self._alloc_stall_until or self._stop_alloc:
            if self._decode_q:
                self.stats.dispatch_stall_cycles += 1
            return 0
        dispatched = 0
        width = self._width
        queue = self._decode_q
        window = self.window
        now = self.cycle
        while queue and dispatched < width:
            ready_at, op = queue[0]
            if ready_at > now:
                break
            is_mem = op.uop.is_mem
            need_lsq = 1 if is_mem else 0
            if not window.has_room(1, 1, need_lsq):
                # record exactly once per stalled cycle (the query above
                # is side-effect free), keeping full_events == number of
                # cycles the resource blocked allocation
                window.note_alloc_stall(1, 1, need_lsq)
                self.stats.dispatch_stall_cycles += 1
                break
            queue.popleft()
            self._dispatch_op(op)
            dispatched += 1
        return dispatched

    def _dispatch_op(self, op: InFlightOp) -> None:
        window = self.window
        uop = op.uop
        op.dispatch_cycle = self.cycle
        window.rob.allocate()
        window.iq.allocate()
        op.in_iq = True
        if uop.is_mem:
            window.lsq.allocate()
        stats = self.stats
        stats.dispatched_uops += 1
        if op.wrong_path:
            stats.wrong_path_uops += 1
        activity = stats.activity
        activity.renames += 1
        activity.iq_writes += 1
        activity.rob_writes += 1

        now = self.cycle
        pending = 0
        map_get = self._map.get
        for src in uop.srcs:
            producer = map_get(src)
            if producer is None or producer.squashed:
                continue
            if producer.woken_at >= 0 and producer.woken_at <= now:
                if producer.inv:
                    op.inherit_inv = True
                continue
            if producer.consumers is None:
                producer.consumers = [op]
            else:
                producer.consumers.append(op)
            pending += 1
        op.pending_srcs = pending
        op.ready_cycle = now + 1
        if pending == 0:
            _heappush(self._ready, (op.seq, op))
        if uop.dst != REG_INVALID:
            self._map[uop.dst] = op
        self.rob.append(op)
        if uop.is_store:
            self._pending_stores[uop.addr & ~7] = op

    # ------------------------------------------------------------------
    # fetch

    def _fetch_stage(self) -> int:
        now = self.cycle
        if now < self._fetch_stall_until:
            self.stats.fetch_stall_cycles += 1
            return 0
        fetched = 0
        width = self._width
        queue = self._decode_q
        activity = self.stats.activity
        trace_ops = self.trace.ops
        n_trace_ops = len(trace_ops)
        l1i_line = self._l1i_line_bytes
        l1i_hit = self._l1i_hit_latency
        while fetched < width and len(queue) < FETCH_BUFFER:
            if self._wrong_mode:
                uop = self.trace.wrong_path.op_at(self._wrong_base_pc,
                                                  self._wrong_k)
                trace_idx = -1
            else:
                if self._trace_idx >= n_trace_ops:
                    break
                uop = trace_ops[self._trace_idx]
                trace_idx = self._trace_idx
            # I-cache access on a new line
            line = uop.pc - (uop.pc % l1i_line)
            if line != self._last_fetch_line:
                activity.l1i_accesses += 1
                done = self.hierarchy.ifetch(uop.pc, now)
                self._last_fetch_line = line
                if done > now + l1i_hit:
                    self._fetch_stall_until = done
                    break
            self._seq += 1
            op = InFlightOp(self._seq, uop, trace_idx, self._wrong_mode)
            op.fetch_cycle = now
            activity.fetches += 1
            activity.decodes += 1
            end_cycle = False
            if self._wrong_mode:
                self._wrong_k += 1
                end_cycle = uop.is_branch     # taken wrong-path branch
            elif uop.is_branch:
                end_cycle = self._fetch_branch(op)
            else:
                self._trace_idx += 1
            queue.append((now + DECODE_LATENCY, op))
            fetched += 1
            if end_cycle:
                break
        return fetched

    def _fetch_branch(self, op: InFlightOp) -> bool:
        """Predict a correct-path branch; returns True if fetch must stop
        this cycle (predicted-taken redirect bubble)."""
        uop = op.uop
        activity = self.stats.activity
        activity.bpred_lookups += 1
        pred_taken, pred_target, token = self.predictor.predict(
            uop.pc, uop.pc + 4)
        op.branch_token = token
        self._trace_idx += 1
        actual_taken = uop.taken
        mispredicted = (pred_taken != actual_taken
                        or (actual_taken and pred_target != uop.target))
        op.mispredicted = mispredicted
        if mispredicted:
            self._wrong_mode = True
            self._wrong_branch = op
            self._wrong_base_pc = pred_target if pred_taken else uop.pc + 4
            self._wrong_k = 0
        return pred_taken

    # ------------------------------------------------------------------
    # resizing

    def _policy_stage(self) -> bool:
        self._stop_alloc = False
        decision = self.policy.tick(self.cycle, self.window)
        acted = False
        if decision.stop_alloc:
            self._stop_alloc = True
            self.stats.stop_alloc_cycles += 1
            acted = True
        if decision.new_level is not None and decision.new_level != self.level:
            self._apply_level(decision.new_level)
            acted = True
        return acted

    # ------------------------------------------------------------------
    # main loop

    def _advance_accounting(self, delta: int) -> None:
        stats = self.stats
        stats.cycles += delta
        stats.note_level_cycles(self.level, delta)
        if delta > 1:
            # fast-forwarded cycles: the machine state is frozen, so the
            # commit-block reason of the last simulated cycle persists —
            # unless the jump target was a policy timer firing before
            # any machine event, in which case the skipped slots belong
            # to the resize controller's own schedule
            if self._ff_timer_jump:
                reason = "policy_timer"
            else:
                reason = self._last_stall_reason or "frontend"
            stats.note_stall_slots(reason, (delta - 1) * self._width)
        activity = stats.activity
        iq_c, rob_c, lsq_c, iq_m, rob_m, lsq_m = self._cap_vec
        activity.iq_size_cycles += iq_c * delta
        activity.rob_size_cycles += rob_c * delta
        activity.lsq_size_cycles += lsq_c * delta
        activity.iq_max_cycles += iq_m * delta
        activity.rob_max_cycles += rob_m * delta
        activity.lsq_max_cycles += lsq_m * delta
        if self.cycle < self._alloc_stall_until:
            stats.transition_stall_cycles += min(
                delta, self._alloc_stall_until - self.cycle)

    def step_cycle(self) -> int:
        """Simulate the current cycle through every stage.

        Returns the suggested cycle delta: 1 normally, larger when the
        core is provably idle until a known future event (the caller may
        advance by any amount between 1 and the returned delta), and 0
        when the trace has fully drained.  The caller must follow up
        with :meth:`advance`.
        """
        progress = 0
        if self._events:
            progress += self._process_events()
        progress += self._commit_stage()
        if self._ready:
            progress += self._issue_stage()
        # a StaticPolicy never acts: skip its tick (and the per-cycle
        # decision allocation) entirely — observable behaviour identical
        if not self._policy_inert and self._policy_stage():
            progress += 1
        progress += self._dispatch_stage()
        progress += self._fetch_stage()
        if self._trace_done():
            return 0
        if progress == 0 and not self._ready:
            jump = self._next_interesting_cycle()
            if jump is None:
                raise DeadlockError(self._deadlock_report(
                    "no events, no timers, nothing in flight"))
            return max(1, jump - self.cycle) if self.fast_forward else 1
        return 1

    def _deadlock_report(self, headline: str) -> str:
        """Diagnostic dump raised with a :class:`DeadlockError`.

        Built only on the error path, so the running simulator pays
        nothing for it.  When the debug harness is attached the last
        traced events are appended — the raw material for answering
        "what was the machine doing when it wedged?".
        """
        window = self.window
        lines = [
            f"deadlock at cycle {self.cycle}: {headline}",
            f"  committed={self.committed_total} trace_idx={self._trace_idx}"
            f"/{len(self.trace.ops)} wrong_mode={self._wrong_mode}",
            f"  level={self.level} stop_alloc={self._stop_alloc} "
            f"alloc_stall_until={self._alloc_stall_until} "
            f"fetch_stall_until={self._fetch_stall_until}",
            f"  rob={window.rob!r} iq={window.iq!r} lsq={window.lsq!r}",
            f"  rob_head={self.rob[0]!r}" if self.rob else "  rob empty",
            f"  decode_q={len(self._decode_q)} entries"
            + (f", head ready at {self._decode_q[0][0]}"
               if self._decode_q else ""),
            f"  events={len(self._events)} scheduled, "
            f"ready={len(self._ready)} queued",
            f"  policy={type(self.policy).__name__} "
            f"next_timer={self.policy.next_timer()}",
            f"  mshr: l1d {self.hierarchy.l1d_mshr.in_flight(self.cycle)}"
            f"/{self.hierarchy.l1d_mshr.entries} in flight, "
            f"l2 {self.hierarchy.l2_mshr.in_flight(self.cycle)}"
            f"/{self.hierarchy.l2_mshr.entries}",
        ]
        if self.debug is not None:
            lines.append("last traced events:")
            lines.append(self.debug.events.render(last=32))
        return "\n".join(lines)

    def advance(self, delta: int) -> None:
        """Account ``delta`` cycles and move the clock."""
        self._advance_accounting(delta)
        self.cycle += delta

    def run(self, until_committed: int, max_cycles: int | None = None) -> None:
        """Advance until ``committed_total`` reaches ``until_committed``,
        the trace drains, or ``max_cycles`` is exceeded (error)."""
        if max_cycles is None:
            # Livelock bound on cycles elapsed *this call*: size it from
            # the commits still to go, not the absolute target — a run()
            # resumed at a high commit count (warmup done, measurement
            # segment) would otherwise inherit an inflated allowance.
            max_cycles = (self.cycle
                          + (until_committed - self.committed_total + 1000)
                          * 600)
        step = self.step_cycle
        advance = self.advance
        while self.committed_total < until_committed:
            if self.cycle > max_cycles:
                raise DeadlockError(self._deadlock_report(
                    f"exceeded {max_cycles} cycles with only "
                    f"{self.committed_total}/{until_committed} committed "
                    f"(likely livelock)"))
            delta = step()
            if delta == 0:
                break
            advance(delta)

    def _trace_done(self) -> bool:
        if self.runahead is not None and self.runahead.active:
            return False    # fetch index will be rewound at runahead exit
        return (not self._wrong_mode
                and self._trace_idx >= len(self.trace.ops)
                and not self.rob and not self._decode_q)

    def trace_drained(self) -> bool:
        """True when the trace is exhausted and the machine is empty.

        Public form of the drain check for external schedulers
        (:class:`repro.multicore.MultiCoreSystem`), which must be able
        to tell "this core is finished" apart from "this core merely
        made no progress this cycle" — ``step_cycle() == 0`` alone
        cannot distinguish the two for every core implementation.
        """
        return self._trace_done()

    def _next_interesting_cycle(self) -> int | None:
        now = self.cycle
        candidates = []
        if self._events:
            candidates.append(self._events[0][0])
        if self._fetch_stall_until > now:
            candidates.append(self._fetch_stall_until)
        if self._alloc_stall_until > now:
            candidates.append(self._alloc_stall_until)
        if self._decode_q:
            head_ready = self._decode_q[0][0]
            if head_ready > now:
                candidates.append(head_ready)
        # an inert (static or pinned) policy never acts, so its per-cycle
        # wishes and timers must not shape fast-forwarding either — a
        # pinned run has to take the exact jump sequence of a static one
        if not self._policy_inert and self.policy.wants_tick_every_cycle:
            candidates.append(now + 1)
        future = [c for c in candidates if c > now]
        machine_next = min(future) if future else None
        timer = None if self._policy_inert else self.policy.next_timer()
        if (timer is not None and timer > now
                and (machine_next is None or timer < machine_next)):
            # the policy timer alone wakes the core: tag the jump so the
            # skipped commit slots are charged to the controller, not to
            # the stall reason that happened to precede the jump
            self._ff_timer_jump = True
            return timer
        self._ff_timer_jump = False
        return machine_next

    # ------------------------------------------------------------------
    # measurement control and result extraction

    def prewarm(self, budget_fraction: float = 0.625) -> None:
        """Checkpoint-style cache warming (DESIGN.md §5).

        ``budget_fraction`` caps the total prewarm at that fraction of
        the L2 (multi-core systems split it between cores).

        The paper skips 16G instructions before measuring, which leaves
        resident working sets warm.  A Python-scale sample cannot afford
        that, so the trace's declared resident regions are pre-installed:
        into the L2 (capped at half its capacity per region so steady-state
        capacity pressure is preserved) and, for small hot sets, the L1D.
        Pre-installed lines count as touched correct-path lines in the
        Figure 11 accounting.
        """
        h = self.hierarchy
        # Total prewarm is capped below the L2 capacity and allocated by
        # priority (hot sets first, then the smaller regions) — warming
        # more than fits would just self-evict and manufacture thrash the
        # steady state does not have.
        budget = int(self.config.l2.size_bytes * budget_fraction)
        regions = sorted(self.trace.warm_regions,
                         key=lambda r: (not r[2], r[1]))
        line = h.l2.line_bytes
        for base, size, l1_too in regions:
            span = min(size, budget)
            span -= span % line
            if span <= 0:
                break
            budget -= span
            h.l2.install_span(base, span, ready_at=0, brought_by=-1,
                              touched=True)
            if l1_too and size <= self.config.l1d.size_bytes:
                h.l1d.install_span(base, size, ready_at=0, brought_by=-1)
        self._pretrain_predictor()

    def _pretrain_predictor(self) -> None:
        """Replay the trace's branch stream through the predictor.

        A 16-bit gshare needs each (PC, history) context trained
        individually; rare history contexts (those following a rarely
        taken branch) would otherwise cold-miss throughout a short
        sample.  The paper's 16G skipped instructions provide exactly
        this training; we substitute a functional (zero-time) replay of
        the branch outcomes the sample will execute.
        """
        predictor = self.predictor
        for uop in self.trace.ops:
            if uop.op is OpClass.BRANCH:
                __, ___, token = predictor.predict(uop.pc, uop.pc + 4)
                predictor.resolve(token, uop.taken, uop.target)
        predictor.predictions = 0
        predictor.mispredictions = 0

    def reset_measurement(self) -> None:
        """Zero all statistics (microarchitectural state is retained) —
        call at the warmup/measurement boundary.

        The hierarchy reset is ownership-aware: shared structures (the
        multi-core L2/channel) are left to the system-level reset so
        their counters are zeroed exactly once, not once per core.
        """
        self.stats.reset()
        self.hierarchy.reset_measurement()
        self.predictor.predictions = 0
        self.predictor.mispredictions = 0

    def result(self) -> SimulationResult:
        """Snapshot the measured statistics into a result record."""
        stats = self.stats
        return SimulationResult(
            program=self.trace.name,
            model=self.config.model.value,
            level=self.config.level,
            cycles=stats.cycles,
            instructions=stats.committed_uops,
            ipc=stats.ipc,
            avg_load_latency=self.hierarchy.average_load_latency(),
            mispredict_rate=self.predictor.mispredict_rate(),
            mlp=mlp_from_intervals(stats.demand_miss_intervals),
            level_residency=stats.level_residency(),
            line_usage=self.hierarchy.line_usage().as_dict(),
            memory_stats={
                "l1i_accesses": self.hierarchy.l1i.accesses,
                "l1i_misses": self.hierarchy.l1i.misses,
                "l1d_accesses": self.hierarchy.l1d.accesses,
                "l1d_misses": self.hierarchy.l1d.misses,
                "l2_accesses": self.hierarchy.l2.accesses,
                "l2_misses": self.hierarchy.l2.misses,
                "dram_requests": self.hierarchy.memory.requests,
                "prefetch_fills": self.hierarchy.prefetch_fills,
                "row_hit_rate": getattr(self.hierarchy.memory,
                                        "row_hit_rate", lambda: 0.0)(),
            },
            stats=stats,
        )


def simulate(config: ProcessorConfig, trace: "Trace",
             warmup: int = 5_000, measure: int = 30_000,
             policy: ResizingPolicy | None = None,
             prewarm: bool = True, sanitize: bool = False,
             fast_forward: bool = True,
             telemetry=None,
             engine: str | None = None) -> SimulationResult:
    """Run one trace on one configuration and return the measured result.

    The caches are pre-installed with the trace's resident regions
    (unless ``prewarm=False``), then ``warmup`` committed micro-ops are
    executed to warm the predictors and the rest of the memory system,
    statistics are reset, and ``measure`` micro-ops are measured.  The
    trace must contain at least ``warmup + measure`` ops.

    ``sanitize=True`` attaches the :mod:`repro.debug` invariant
    sanitizer for the whole run (including warmup) and verifies the
    final accounting before returning.  Timing is unchanged; host speed
    is not.

    ``fast_forward=False`` forces the main loop to step every simulated
    cycle instead of jumping over provably idle ones.  Observable timing
    must be unchanged — that is the fast-forward equivalence oracle of
    :mod:`repro.verify`, which would catch any timer-skew bug where a
    jump lands past a cycle a policy needed to observe.

    ``telemetry`` takes a :class:`repro.telemetry.TelemetryProbe`; it is
    attached at the warmup/measurement boundary (so the recording covers
    exactly the measured region) and flushed before the result is
    extracted.  Sampling is purely observational: the returned result's
    canonical stat digest is bit-identical to a ``telemetry=None`` run
    (the digest-neutrality invariant of :mod:`repro.telemetry`, enforced
    by ``tests/test_telemetry.py``).

    ``engine`` selects the main-loop backend (``"reference"`` or
    ``"fast"``, see :mod:`repro.pipeline.engine`); ``None`` falls back
    to ``config.engine``.  Engines are behaviourally identical — the
    choice never appears in a result key or digest — so it is a pure
    host-speed knob.  The fast engine transparently defers to the
    reference stepper whenever per-cycle observers are attached
    (``sanitize=True``, ``telemetry``, ``fast_forward=False``).
    """
    if len(trace.ops) < warmup + measure:
        raise ValueError(
            f"trace has {len(trace.ops)} ops; need {warmup + measure}")
    # Imported here: repro.pipeline.engine imports this module.
    from repro.pipeline.engine import get_engine
    eng = get_engine(engine if engine is not None
                     else getattr(config, "engine", "reference"))
    proc = Processor(config, trace, policy=policy, sanitize=sanitize)
    proc.fast_forward = fast_forward
    if prewarm:
        proc.prewarm()
    if warmup:
        eng.run(proc, until_committed=warmup)
        proc.reset_measurement()
    if telemetry is not None:
        telemetry.attach(proc)
    eng.run(proc, until_committed=warmup + measure)
    if proc.debug is not None:
        proc.debug.final_check()
    if telemetry is not None:
        telemetry.finish()
    return proc.result()
