"""Resizable FIFO window resources (paper Figure 3).

Each of the ROB, IQ and LSQ is a FIFO structure whose *active region*
spans ``capacity`` physical entries out of ``max_capacity``.  Allocation
claims an entry at the tail, deallocation releases one (in order for the
ROB/LSQ, out of order for the IQ — the occupancy count is what matters
for resizing).

Shrinking from S to S' requires the region [S', S) to be vacant.  With
in-order allocation and mostly-in-order release, the occupied region is a
contiguous window of at most ``occupancy`` entries, so the model uses
``occupancy <= S'`` as the vacancy condition.  This is at most a few
cycles optimistic versus tracking exact physical slot indices (the paper
itself stalls allocation until the region drains, which the controller
also does here via ``stop_alloc``); the approximation is noted in
DESIGN.md §5.
"""

from __future__ import annotations


class WindowResource:
    """Occupancy tracking of one resizable FIFO resource."""

    def __init__(self, name: str, capacity: int, max_capacity: int) -> None:
        if not 0 < capacity <= max_capacity:
            raise ValueError(
                f"{name}: need 0 < capacity <= max_capacity, "
                f"got {capacity}/{max_capacity}")
        self.name = name
        self.capacity = capacity
        self.max_capacity = max_capacity
        self.occupancy = 0
        self.peak_occupancy = 0
        self.alloc_count = 0
        self.release_count = 0
        #: stalled-allocation cycles charged to this resource.  Strictly
        #: a *recording* counter: only :meth:`note_full` bumps it, never
        #: the query methods, so observing fullness any number of times
        #: per cycle cannot skew the stall-rate signal policies derive
        #: from it (see OccupancyPolicy).
        self.full_events = 0

    @property
    def free(self) -> int:
        return self.capacity - self.occupancy

    def is_full(self) -> bool:
        """Pure query: no counters move (see :meth:`note_full`)."""
        return self.occupancy >= self.capacity

    def note_full(self) -> None:
        """Record one allocation-blocked cycle.  Call exactly once per
        cycle in which allocation stalled on this resource."""
        self.full_events += 1

    def allocate(self, n: int = 1) -> None:
        if self.occupancy + n > self.capacity:
            raise RuntimeError(
                f"{self.name}: allocation overflow "
                f"({self.occupancy}+{n} > {self.capacity})")
        self.occupancy += n
        self.alloc_count += n
        if self.occupancy > self.peak_occupancy:
            self.peak_occupancy = self.occupancy

    def release(self, n: int = 1) -> None:
        if self.occupancy - n < 0:
            raise RuntimeError(f"{self.name}: release underflow")
        self.occupancy -= n
        self.release_count += n

    def can_shrink_to(self, new_capacity: int) -> bool:
        """True if the region beyond ``new_capacity`` is vacant."""
        return self.occupancy <= new_capacity

    def resize(self, new_capacity: int) -> None:
        """Change the active region size (grow or shrink)."""
        if not 0 < new_capacity <= self.max_capacity:
            raise ValueError(
                f"{self.name}: capacity {new_capacity} outside "
                f"1..{self.max_capacity}")
        if new_capacity < self.occupancy:
            raise RuntimeError(
                f"{self.name}: cannot shrink to {new_capacity} with "
                f"{self.occupancy} occupants")
        self.capacity = new_capacity

    def __repr__(self) -> str:
        return (f"<{self.name} {self.occupancy}/{self.capacity} "
                f"(max {self.max_capacity})>")


class WindowSet:
    """The three window resources, resized together by level."""

    def __init__(self, levels, level: int, max_level: int | None = None) -> None:
        """``max_level`` bounds the *physical* provisioning: a fixed-size
        processor only builds its own level's resources, while the dynamic
        model physically provisions the top level (paper Section 5.1)."""
        top = levels[(len(levels) if max_level is None else max_level) - 1]
        cfg = levels[level - 1]
        self.levels = levels
        self.rob = WindowResource("ROB", cfg.rob_entries, top.rob_entries)
        self.iq = WindowResource("IQ", cfg.iq_entries, top.iq_entries)
        self.lsq = WindowResource("LSQ", cfg.lsq_entries, top.lsq_entries)
        #: micro-ops retired so far, kept current by the processor's
        #: commit stage — the commit-throughput input of the feedback
        #: policies (see ContributionPolicy), which receive the WindowSet
        #: every tick but must not reach into processor internals.
        self.committed = 0

    def can_shrink_to(self, level: int) -> bool:
        """True if *all three* resources can shrink simultaneously
        (paper Figure 5, line 16)."""
        cfg = self.levels[level - 1]
        return (self.rob.can_shrink_to(cfg.rob_entries)
                and self.iq.can_shrink_to(cfg.iq_entries)
                and self.lsq.can_shrink_to(cfg.lsq_entries))

    def resize_to(self, level: int) -> None:
        cfg = self.levels[level - 1]
        self.rob.resize(cfg.rob_entries)
        self.iq.resize(cfg.iq_entries)
        self.lsq.resize(cfg.lsq_entries)

    def has_room(self, need_rob: int, need_iq: int, need_lsq: int) -> bool:
        """Pure query: whether all three resources can take the request.

        Deliberately mutates nothing — observation and recording are
        split so any number of callers per cycle (dispatch, policies,
        the sanitizer) see the same answer without corrupting the
        ``full_events`` stall signal.  The dispatch stage calls
        :meth:`note_alloc_stall` once per cycle it actually stalls.
        """
        # hot path: read occupancy/capacity directly rather than through
        # the `free` property (a function call per resource per cycle)
        rob = self.rob
        iq = self.iq
        lsq = self.lsq
        return (rob.capacity - rob.occupancy >= need_rob
                and iq.capacity - iq.occupancy >= need_iq
                and lsq.capacity - lsq.occupancy >= need_lsq)

    def note_alloc_stall(self, need_rob: int, need_iq: int,
                         need_lsq: int) -> None:
        """Record one stalled-allocation cycle against every resource
        that lacked room for the request.  The caller must invoke this
        at most once per stalled cycle, so ``full_events`` stays equal
        to the number of cycles the resource blocked allocation."""
        rob = self.rob
        if rob.capacity - rob.occupancy < need_rob:
            rob.note_full()
        iq = self.iq
        if iq.capacity - iq.occupancy < need_iq:
            iq.note_full()
        lsq = self.lsq
        if lsq.capacity - lsq.occupancy < need_lsq:
            lsq.note_full()
