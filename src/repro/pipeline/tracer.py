"""Pipeline lifecycle tracing (pipeview-style).

Attach a :class:`PipelineTracer` to a processor to record, for every
*committed* micro-op, the cycles at which it was fetched, dispatched,
issued and completed — the raw material for pipeline visualisation and
for debugging timing questions ("why did this load issue 40 cycles after
dispatch?").

Example::

    proc = Processor(base_config(), trace)
    tracer = PipelineTracer(proc, capacity=200)
    proc.run(until_committed=500)
    print(tracer.render())
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class OpRecord:
    """Lifecycle of one committed micro-op."""

    seq: int
    pc: int
    op_name: str
    fetch: int
    dispatch: int
    issue: int
    complete: int
    commit: int
    l2_miss: bool
    forwarded: bool
    mispredicted: bool

    @property
    def latency(self) -> int:
        """Fetch-to-commit lifetime in cycles."""
        return self.commit - self.fetch

    @property
    def queue_time(self) -> int:
        """Cycles spent waiting in the issue queue."""
        return max(0, self.issue - self.dispatch)

    def as_dict(self) -> dict:
        return {"seq": self.seq, "pc": self.pc, "op": self.op_name,
                "fetch": self.fetch, "dispatch": self.dispatch,
                "issue": self.issue, "complete": self.complete,
                "commit": self.commit, "l2_miss": self.l2_miss,
                "forwarded": self.forwarded,
                "mispredicted": self.mispredicted}


class PipelineTracer:
    """Records the last ``capacity`` committed ops of a processor."""

    def __init__(self, processor, capacity: int = 1000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.records: deque[OpRecord] = deque(maxlen=capacity)
        self.total_committed = 0
        processor.tracer = self

    # called by Processor._commit_op
    def on_commit(self, op, cycle: int) -> None:
        self.total_committed += 1
        uop = op.uop
        self.records.append(OpRecord(
            seq=op.seq, pc=uop.pc, op_name=uop.op.name,
            fetch=op.fetch_cycle, dispatch=op.dispatch_cycle,
            issue=op.issue_cycle, complete=op.complete_cycle,
            commit=cycle, l2_miss=op.l2_miss, forwarded=op.forwarded,
            mispredicted=op.mispredicted))

    # ------------------------------------------------------------------

    def render(self, last: int | None = None) -> str:
        """A text table of the most recent ``last`` records."""
        records = list(self.records)[-(last or len(self.records)):]
        lines = [f"{'seq':>7} {'pc':>10} {'op':<7} {'F':>7} {'D':>7} "
                 f"{'I':>7} {'C':>7} {'R':>7}  flags"]
        for r in records:
            flags = "".join((
                "M" if r.l2_miss else "",
                "f" if r.forwarded else "",
                "!" if r.mispredicted else ""))
            lines.append(
                f"{r.seq:>7} {r.pc:>#10x} {r.op_name:<7} {r.fetch:>7} "
                f"{r.dispatch:>7} {r.issue:>7} {r.complete:>7} "
                f"{r.commit:>7}  {flags}")
        return "\n".join(lines)

    def average_latency(self) -> float:
        """Mean fetch-to-commit latency over the recorded window."""
        if not self.records:
            return 0.0
        return sum(r.latency for r in self.records) / len(self.records)

    def average_queue_time(self) -> float:
        """Mean dispatch-to-issue wait over the recorded window."""
        if not self.records:
            return 0.0
        return sum(r.queue_time for r in self.records) / len(self.records)

    def slowest(self, n: int = 10) -> list[OpRecord]:
        """The ``n`` longest-lived recorded ops (critical suspects)."""
        return sorted(self.records, key=lambda r: r.latency,
                      reverse=True)[:n]

    def to_jsonl(self, path: str) -> int:
        """Export the recorded lifecycles as JSON lines; returns the
        record count (same convention as
        :meth:`repro.debug.events.EventTrace.to_jsonl`)."""
        import json
        records = list(self.records)
        with open(path, "w", encoding="utf-8") as fh:
            for r in records:
                fh.write(json.dumps(r.as_dict()) + "\n")
        return len(records)
