"""CLI: run an instrumented simulation and render telemetry reports.

Usage::

    python -m repro.telemetry                          # default run
    python -m repro.telemetry run --program libquantum --model dynamic \\
        --period 64 --out /tmp/lq.jsonl --csv /tmp/lq --profile
    python -m repro.telemetry report .simcache/telemetry/<key>.jsonl
    python -m repro.telemetry smoke                    # CI self-check

``run`` simulates one program with a telemetry probe attached and
prints the level timeline, occupancy heat summary and interval CPI
stack (optionally exporting JSONL/CSV artifacts and, with
``--profile``, per-stage host self-time).  ``report`` renders an
existing JSONL artifact — e.g. one the campaign executor wrote under
``.simcache/telemetry/`` via ``python -m repro.experiments
--telemetry``.  ``smoke`` is the CI gate: it asserts digest neutrality
(telemetry on/off bit-identical), grow↔miss coincidence on a
memory-bound workload, and JSONL round-trip fidelity.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.config import (
    base_config,
    dynamic_config,
    fixed_config,
    ideal_config,
    runahead_config,
)
from repro.pipeline import simulate
from repro.telemetry import TelemetryProbe, Telemetry, render_report
from repro.telemetry.report import grow_miss_coincidence
from repro.workloads import trace_for_program


def _make_config(model: str, level: int):
    if model == "base":
        return base_config()
    if model == "fixed":
        return fixed_config(level)
    if model == "dynamic":
        return dynamic_config(level)
    if model == "ideal":
        return ideal_config(level)
    if model == "runahead":
        return runahead_config()
    raise ValueError(f"unknown model {model!r}")


def _instrumented_run(args) -> TelemetryProbe:
    config = _make_config(args.model, args.level)
    trace = trace_for_program(args.program,
                              n_ops=args.warmup + args.measure + 1_000,
                              seed=args.seed)
    probe = TelemetryProbe(period=args.period,
                           profile=getattr(args, "profile", False))
    simulate(config, trace, warmup=args.warmup, measure=args.measure,
             telemetry=probe)
    return probe


def _cmd_run(args) -> int:
    probe = _instrumented_run(args)
    tel = probe.telemetry
    print(render_report(tel))
    if args.out:
        print(f"\nwrote JSONL artifact: {tel.to_jsonl(args.out)}")
    if args.csv:
        print(f"wrote CSV tables: {tel.samples_csv(args.csv + '.samples.csv')}"
              f", {tel.events_csv(args.csv + '.events.csv')}")
    if probe.profiler is not None:
        print()
        print(probe.profiler.render())
    return 0


def _cmd_report(args) -> int:
    tel = Telemetry.from_jsonl(args.artifact)
    print(render_report(tel))
    return 0


def _cmd_smoke(args) -> int:
    """CI self-check: digest neutrality + grow↔miss coincidence +
    artifact round-trip, on a memory-bound workload."""
    import os
    import tempfile

    from repro.verify.digest import diff_payloads, result_digest

    config = _make_config(args.model, args.level)

    def fresh_trace():
        return trace_for_program(args.program,
                                 n_ops=args.warmup + args.measure + 1_000,
                                 seed=args.seed)

    bare = simulate(config, fresh_trace(),
                    warmup=args.warmup, measure=args.measure)
    probe = TelemetryProbe(period=args.period)
    probed = simulate(config, fresh_trace(), warmup=args.warmup,
                      measure=args.measure, telemetry=probe)
    failures = []
    if result_digest(bare) != result_digest(probed):
        failures.append("telemetry on/off digests differ:\n"
                        + "\n".join(diff_payloads(bare, probed)))
    tel = probe.telemetry
    if not tel.samples_emitted:
        failures.append("probe recorded no samples")
    co = grow_miss_coincidence(tel)
    if not co["grows"]:
        failures.append(f"no grow events on {args.program} — not a "
                        f"memory-bound run?")
    elif co["matched"] < co["grows"]:
        failures.append(f"only {co['matched']}/{co['grows']} grow events "
                        f"trail an L2 miss within {co['window']} cycles")
    fd, path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    try:
        tel.to_jsonl(path)
        loaded = Telemetry.from_jsonl(path)
        if (list(loaded.samples) != list(tel.samples)
                or list(loaded.events) != list(tel.events)
                or loaded.event_counts != tel.event_counts):
            failures.append("JSONL artifact did not round-trip")
    finally:
        os.unlink(path)
    if failures:
        for failure in failures:
            print(f"SMOKE FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"telemetry smoke OK: {args.program}/{args.model} digest "
          f"bit-identical with probe attached; "
          f"{co['matched']}/{co['grows']} grow events within "
          f"{co['window']} cycles of a demand L2 miss; "
          f"{tel.samples_emitted} samples round-tripped")
    return 0


def _add_run_args(sub, defaults_measure: int) -> None:
    sub.add_argument("--program", default="omnetpp",
                     help="workload profile (default: omnetpp — "
                          "memory-intensive and phase-mixed, so level "
                          "transitions land inside the measured region; "
                          "steady miss streams like libquantum grow to "
                          "max level during warmup and stay there)")
    sub.add_argument("--model", default="dynamic",
                     choices=("base", "fixed", "dynamic", "ideal",
                              "runahead"))
    sub.add_argument("--level", type=int, default=3,
                     help="window level (max level for dynamic)")
    sub.add_argument("--warmup", type=int, default=4_000)
    sub.add_argument("--measure", type=int, default=defaults_measure)
    sub.add_argument("--seed", type=int, default=1)
    sub.add_argument("--period", type=int, default=64,
                     help="sampling period in cycles")


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0].startswith("-"):
        argv = ["run"] + argv
    parser = argparse.ArgumentParser(prog="python -m repro.telemetry",
                                     description=__doc__)
    subs = parser.add_subparsers(dest="cmd", required=True)

    run_p = subs.add_parser("run", help="simulate with a probe attached "
                                        "and render the report")
    _add_run_args(run_p, defaults_measure=15_000)
    run_p.add_argument("--out", default="",
                       help="also write the recording as JSONL here")
    run_p.add_argument("--csv", default="",
                       help="also write <PREFIX>.samples.csv and "
                            "<PREFIX>.events.csv")
    run_p.add_argument("--profile", action="store_true",
                       help="measure per-stage host self-time")
    run_p.set_defaults(func=_cmd_run)

    report_p = subs.add_parser("report",
                               help="render an existing JSONL artifact")
    report_p.add_argument("artifact",
                          help="path to a telemetry .jsonl file (e.g. "
                               ".simcache/telemetry/<key>.jsonl)")
    report_p.set_defaults(func=_cmd_report)

    smoke_p = subs.add_parser("smoke",
                              help="CI gate: digest neutrality, grow-miss "
                                   "coincidence, JSONL round-trip")
    _add_run_args(smoke_p, defaults_measure=8_000)
    smoke_p.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # reports are made for `| head` / `| less`; a closed pipe is
        # not an error, but Python would print a traceback on exit
        # unless stdout is replaced before the interpreter flushes it
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
