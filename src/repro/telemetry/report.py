"""Plain-text report rendering for telemetry recordings.

Turns a :class:`~repro.telemetry.recorder.Telemetry` into the three
views ``python -m repro.telemetry`` prints:

* the **level timeline** — the window level over time as a sparkline
  with the grow/shrink/drain event ledger underneath; this is the
  reproduction's view of the paper's Figure 5/6 behaviour, and
  :func:`grow_miss_coincidence` quantifies the causal story (every
  grow should trail a demand L2-miss detection);
* the **occupancy heat summary** — mean/peak occupancy and utilisation
  of ROB/IQ/LSQ plus MSHR pressure, per resource;
* the **interval CPI stack** — a one-character-per-interval strip of
  the dominant stall bucket, plus aggregate per-bucket shares.

All views read only the retained ring window (plus the wrap-surviving
totals); CSV export for plotting lives on the recorder.
"""

from __future__ import annotations

from repro.stats import sparkline
from repro.telemetry.recorder import STALL_REASONS, Telemetry

#: One display character per CPI bucket for the dominant-stall strip.
_STALL_CHARS = {
    "mem_dram": "D", "mem_cache": "c", "mem_forward": "f",
    "deps": "d", "issue": "i", "exec": "x",
    "policy_timer": "t", "frontend": "F",
}

#: How close (in cycles) a demand L2 miss must precede a grow event to
#: count as its trigger.  The MLP-aware policy grows on the first tick
#: at or after a miss detection, so the true gap is a handful of cycles;
#: 64 gives slack for transition-penalty pile-ups without letting an
#: unrelated miss claim credit.
COINCIDENCE_WINDOW = 64


def grow_miss_coincidence(tel: Telemetry,
                          window: int = COINCIDENCE_WINDOW) -> dict:
    """How many ``grow`` events trail an ``l2_miss`` within ``window``.

    Returns ``{"grows": N, "matched": M, "window": window,
    "gaps": [...]}`` where ``gaps`` holds, per matched grow, the cycle
    distance to the most recent miss detection at or before it.
    """
    miss_cycles = sorted(e.cycle for e in tel.events if e.kind == "l2_miss")
    grows = [e for e in tel.events if e.kind == "grow"]
    matched = 0
    gaps = []
    import bisect
    for grow in grows:
        idx = bisect.bisect_right(miss_cycles, grow.cycle) - 1
        if idx >= 0 and grow.cycle - miss_cycles[idx] <= window:
            matched += 1
            gaps.append(grow.cycle - miss_cycles[idx])
    return {"grows": len(grows), "matched": matched,
            "window": window, "gaps": gaps}


def render_level_timeline(tel: Telemetry, width: int = 64) -> str:
    """Level-over-time sparkline plus the policy-event ledger."""
    levels = tel.levels()
    meta = tel.meta
    max_level = max([meta.get("level", 1), *(levels or [1])])
    lines = []
    span = ""
    if tel.samples:
        span = (f"cycles {tel.samples[0].cycle - tel.samples[0].cycles}"
                f"..{tel.samples[-1].cycle}")
    lines.append(f"level timeline ({len(levels)} intervals x "
                 f"{tel.period} cycles, {span})")
    lines.append(f"  level 1-{max_level} : "
                 f"{sparkline(levels, width=width, max_value=max_level)}")
    misses = [s.l2_misses for s in tel.samples]
    lines.append(f"  L2 misses : {sparkline(misses, width=width)}")
    lines.append(f"  IPC       : {sparkline(tel.ipcs(), width=width)}")
    counts = tel.event_counts
    lines.append("  events    : "
                 + ", ".join(f"{counts.get(k, 0)} {k}"
                             for k in ("grow", "shrink", "drain", "l2_miss")))
    co = grow_miss_coincidence(tel)
    if co["grows"]:
        gaps = co["gaps"]
        detail = ""
        if gaps:
            detail = (f" (median gap {sorted(gaps)[len(gaps) // 2]} cy, "
                      f"max {max(gaps)} cy)")
        lines.append(f"  grow<-miss: {co['matched']}/{co['grows']} grow "
                     f"events within {co['window']} cycles of a demand "
                     f"L2 miss{detail}")
    transitions = [e for e in tel.events if e.kind in ("grow", "shrink")]
    for event in transitions[:8]:
        lines.append(f"    @{event.cycle:>8} {event.kind:<6} "
                     f"{event.detail}")
    if len(transitions) > 8:
        lines.append(f"    ... {len(transitions) - 8} more transitions")
    return "\n".join(lines)


def render_occupancy_summary(tel: Telemetry, width: int = 64) -> str:
    """Mean/peak occupancy and utilisation per window resource."""
    lines = ["occupancy heat summary"]
    if not tel.samples:
        lines.append("  (no samples)")
        return "\n".join(lines)
    for resource in ("rob", "iq", "lsq"):
        occs = tel.occupancies(resource)
        caps = [getattr(s, f"{resource}_cap") for s in tel.samples]
        mean_occ = sum(occs) / len(occs)
        utilisations = [o / c for o, c in zip(occs, caps) if c]
        mean_util = (sum(utilisations) / len(utilisations)
                     if utilisations else 0.0)
        peak = getattr(tel, f"peak_{resource}")
        lines.append(f"  {resource.upper():<4} "
                     f"{sparkline(occs, width=width, max_value=max(caps))} "
                     f" mean {mean_occ:6.1f}  peak {peak:>3}  "
                     f"util {mean_util:5.1%}")
    mshrs = [s.mshr_l1d + s.mshr_l2 for s in tel.samples]
    lines.append(f"  MSHR {sparkline(mshrs, width=width)} "
                 f" mean {sum(mshrs) / len(mshrs):6.1f}  "
                 f"peak {max(mshrs):>3}  (L1D+L2 in flight)")
    width_cfg = tel.meta.get("width")
    if width_cfg and tel.cycles_covered:
        slots = width_cfg * tel.cycles_covered
        lines.append(f"  width util: commit "
                     f"{tel.committed_total / slots:5.1%}  issue "
                     f"{tel.issued_total / slots:5.1%} of "
                     f"{width_cfg}-wide slots over "
                     f"{tel.cycles_covered} cycles")
    return "\n".join(lines)


def render_cpi_intervals(tel: Telemetry, width: int = 64) -> str:
    """Dominant-stall strip per interval + aggregate bucket shares."""
    lines = ["interval CPI stack (dominant stall bucket per interval)"]
    strip = []
    for s in tel.samples:
        if s.stalls:
            reason = max(s.stalls.items(), key=lambda kv: kv[1])[0]
            strip.append(_STALL_CHARS.get(reason, "?"))
        else:
            strip.append(".")
    if len(strip) > width:
        # keep one char per pooled bucket: take the bucket's modal char
        bucket = len(strip) / width
        pooled = []
        for i in range(width):
            lo, hi = int(i * bucket), max(int(i * bucket) + 1,
                                          int((i + 1) * bucket))
            chunk = strip[lo:hi]
            pooled.append(max(set(chunk), key=chunk.count))
        strip = pooled
    lines.append("  " + "".join(strip))
    legend = "  ".join(f"{ch}={reason}"
                       for reason, ch in _STALL_CHARS.items())
    lines.append(f"  legend: .=none  {legend}")
    total = sum(tel.stall_totals.values())
    if total:
        lines.append("  stall-slot shares (whole run, wrap-proof):")
        for reason in STALL_REASONS:
            slots = tel.stall_totals.get(reason, 0)
            if slots:
                lines.append(f"    {reason:<13} {slots:>9}  "
                             f"{slots / total:5.1%}")
    return "\n".join(lines)


def render_report(tel: Telemetry, width: int = 64) -> str:
    """The full three-view report ``python -m repro.telemetry`` prints."""
    meta = tel.meta
    head = (f"== telemetry: {meta.get('program', '?')} / "
            f"{meta.get('model', '?')} L{meta.get('level', '?')} "
            f"(period {tel.period}, {tel.samples_emitted} samples, "
            f"{tel.events_emitted} events)")
    if tel.samples_emitted > len(tel.samples):
        head += (f"\n   ring retains last {len(tel.samples)} samples; "
                 f"totals cover all {tel.samples_emitted}")
    return "\n\n".join([
        head,
        render_level_timeline(tel, width=width),
        render_occupancy_summary(tel, width=width),
        render_cpi_intervals(tel, width=width),
    ])
