"""Wall-clock profiling hooks for the simulator itself.

Measures *host* self-time per pipeline stage — where the Python
simulator spends its seconds, not where the simulated core spends its
cycles.  Installed by the same bound-method shadowing as the telemetry
probe, so an unprofiled run carries zero overhead; a profiled run pays
two ``perf_counter`` calls per stage invocation but simulates the exact
same cycles (host timing never feeds back into the model).
"""

from __future__ import annotations

from time import perf_counter


class StageProfiler:
    """Per-stage host wall-clock accounting for one processor run."""

    #: (report name, Processor method) in pipeline order.  ``policy`` is
    #: absent from inert (static/pinned) runs — its row simply stays 0.
    STAGES = (
        ("events", "_process_events"),
        ("commit", "_commit_stage"),
        ("issue", "_issue_stage"),
        ("policy", "_policy_stage"),
        ("dispatch", "_dispatch_stage"),
        ("fetch", "_fetch_stage"),
    )

    def __init__(self) -> None:
        self.seconds = {name: 0.0 for name, _ in self.STAGES}
        self.calls = {name: 0 for name, _ in self.STAGES}
        self.wall_seconds = 0.0
        self._started = None

    def attach(self, proc) -> "StageProfiler":
        """Wrap every stage method of ``proc`` with a timer."""
        seconds = self.seconds
        calls = self.calls
        for name, attr in self.STAGES:
            orig = getattr(proc, attr)

            def timed(*args, _orig=orig, _name=name, **kwargs):
                t0 = perf_counter()
                try:
                    return _orig(*args, **kwargs)
                finally:
                    seconds[_name] += perf_counter() - t0
                    calls[_name] += 1

            setattr(proc, attr, timed)
        self._started = perf_counter()
        return self

    def finish(self) -> None:
        if self._started is not None:
            self.wall_seconds = perf_counter() - self._started
            self._started = None

    # ------------------------------------------------------------------

    def stage_seconds(self) -> dict[str, float]:
        return dict(self.seconds)

    def render(self) -> str:
        """Plain-text per-stage self-time table."""
        total = sum(self.seconds.values())
        lines = ["simulator self-time by stage (host wall clock):"]
        for name, _ in self.STAGES:
            secs = self.seconds[name]
            share = secs / total if total else 0.0
            lines.append(f"  {name:<10} {secs:>8.3f}s  {share:>5.1%}"
                         f"  ({self.calls[name]} calls)")
        other = max(0.0, self.wall_seconds - total)
        lines.append(f"  {'(other)':<10} {other:>8.3f}s"
                     f"   — main loop, events bookkeeping")
        lines.append(f"  {'wall':<10} {self.wall_seconds:>8.3f}s")
        return "\n".join(lines)
