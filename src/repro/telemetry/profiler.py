"""Wall-clock profiling hooks for the simulator itself.

Measures *host* self-time per pipeline stage — where the Python
simulator spends its seconds, not where the simulated core spends its
cycles.  Installed by the same bound-method shadowing as the telemetry
probe, so an unprofiled run carries zero overhead; a profiled run pays
two ``perf_counter`` calls per stage invocation but simulates the exact
same cycles (host timing never feeds back into the model).
"""

from __future__ import annotations

from time import perf_counter


class LatencyReservoir:
    """Bounded sample reservoir with exact nearest-rank percentiles.

    Shared between the serving layer's ``/metrics`` exposition and the
    load generator's report: both need p50/p95/p99 over a stream of
    durations without keeping the whole stream.  Up to ``limit`` samples
    are retained; past that the reservoir becomes a ring (sample ``n``
    overwrites slot ``n mod limit``), which keeps the window recent and
    the behaviour deterministic — no random eviction, so two runs that
    record the same durations report the same percentiles.
    """

    def __init__(self, limit: int = 4096) -> None:
        if limit < 1:
            raise ValueError("reservoir limit must be >= 1")
        self.limit = limit
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: list[float] = []

    def record(self, seconds: float) -> None:
        if self.count < self.limit:
            self._samples.append(seconds)
        else:
            self._samples[self.count % self.limit] = seconds
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the retained samples (q in 0..1)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        return {"count": float(self.count), "mean": self.mean,
                "p50": self.percentile(0.50), "p95": self.percentile(0.95),
                "p99": self.percentile(0.99), "max": self.max}


class StageProfiler:
    """Per-stage host wall-clock accounting for one processor run."""

    #: (report name, Processor method) in pipeline order.  ``policy`` is
    #: absent from inert (static/pinned) runs — its row simply stays 0.
    STAGES = (
        ("events", "_process_events"),
        ("commit", "_commit_stage"),
        ("issue", "_issue_stage"),
        ("policy", "_policy_stage"),
        ("dispatch", "_dispatch_stage"),
        ("fetch", "_fetch_stage"),
    )

    def __init__(self) -> None:
        self.seconds = {name: 0.0 for name, _ in self.STAGES}
        self.calls = {name: 0 for name, _ in self.STAGES}
        self.wall_seconds = 0.0
        self._started = None

    def attach(self, proc) -> "StageProfiler":
        """Wrap every stage method of ``proc`` with a timer."""
        seconds = self.seconds
        calls = self.calls
        for name, attr in self.STAGES:
            orig = getattr(proc, attr)

            def timed(*args, _orig=orig, _name=name, **kwargs):
                t0 = perf_counter()
                try:
                    return _orig(*args, **kwargs)
                finally:
                    seconds[_name] += perf_counter() - t0
                    calls[_name] += 1

            setattr(proc, attr, timed)
        self._started = perf_counter()
        return self

    def finish(self) -> None:
        if self._started is not None:
            self.wall_seconds = perf_counter() - self._started
            self._started = None

    # ------------------------------------------------------------------

    def stage_seconds(self) -> dict[str, float]:
        return dict(self.seconds)

    def render(self) -> str:
        """Plain-text per-stage self-time table."""
        total = sum(self.seconds.values())
        lines = ["simulator self-time by stage (host wall clock):"]
        for name, _ in self.STAGES:
            secs = self.seconds[name]
            share = secs / total if total else 0.0
            lines.append(f"  {name:<10} {secs:>8.3f}s  {share:>5.1%}"
                         f"  ({self.calls[name]} calls)")
        other = max(0.0, self.wall_seconds - total)
        lines.append(f"  {'(other)':<10} {other:>8.3f}s"
                     f"   — main loop, events bookkeeping")
        lines.append(f"  {'wall':<10} {self.wall_seconds:>8.3f}s")
        return "\n".join(lines)
