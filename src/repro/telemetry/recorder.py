"""Ring-buffered time-series storage for telemetry samples and events.

The recorder is deliberately passive: :class:`TelemetryProbe
<repro.telemetry.probe.TelemetryProbe>` pushes :class:`IntervalSample`
and :class:`PolicyEvent` records into a :class:`Telemetry` instance,
which keeps the most recent ``capacity`` of each in a ring (a bounded
``deque``) while whole-run totals — samples/events emitted, per-kind
event counts, per-bucket stall slots, committed micro-ops, demand L2
misses, peak occupancies — survive wraparound.  The same split the
:mod:`repro.debug` event trace uses: a bounded window of detail, exact
aggregate accounting.

Export formats:

* **JSONL** (:meth:`Telemetry.to_jsonl` / :meth:`Telemetry.from_jsonl`)
  — one ``meta`` line carrying run identity and the wrap-surviving
  totals, then one line per sample and per event.  This is the per-job
  artifact the campaign executor drops into ``.simcache/telemetry/``
  and the input of ``python -m repro.telemetry report``.  Round-trips
  exactly (integer counters, string reasons — no floats).
* **CSV** (:meth:`Telemetry.samples_csv`, :meth:`Telemetry.events_csv`,
  :func:`load_samples_csv`) — fixed-column tables for plotting; the
  stall dict is widened into one ``stall_<reason>`` column per CPI
  bucket of :data:`STALL_REASONS`.

Nothing here touches a processor: recording cannot perturb a run (the
digest-neutrality invariant of :mod:`repro.telemetry` is enforced on
the probe side, which only performs pure reads).
"""

from __future__ import annotations

import csv
import json
import os
from collections import deque

#: CPI-stack stall buckets, in the column order of the CSV export.
#: Matches the commit-stall reasons produced by the pipeline plus the
#: fast-forward ``policy_timer`` bucket (see ``repro.analysis.cpi``;
#: ``base`` is derived there, never recorded).
STALL_REASONS = ("mem_dram", "mem_cache", "mem_forward", "deps",
                 "issue", "exec", "policy_timer", "frontend")

#: Policy-event kinds a probe can record: window level transitions
#: (``grow``/``shrink``), the controller stopping allocation to drain
#: the region being removed (``drain``), demand L2-miss detections
#: (``l2_miss``) — the cause the grows should line up with — and, for
#: the learned bandit controllers, every arm selection (``pull``) and
#: per-window score (``reward``); the detail string carries the arm,
#: context and reward value for ``tools/train_policy_table.py``.
EVENT_KINDS = ("grow", "shrink", "drain", "l2_miss", "pull", "reward")

_SAMPLE_FIELDS = (
    "cycle", "cycles", "level",
    "rob_occ", "rob_cap", "iq_occ", "iq_cap", "lsq_occ", "lsq_cap",
    "mshr_l1d", "mshr_l2",
    "committed", "issued", "dispatched", "l2_misses", "stop_alloc",
)


class IntervalSample:
    """One sampling interval, recorded at its trailing cycle edge.

    Occupancy/level/MSHR fields are the machine state *at* ``cycle``;
    ``committed``/``issued``/``dispatched``/``l2_misses``/``stop_alloc``
    and the ``stalls`` dict are deltas over the ``cycles`` cycles the
    interval covers (normally the sampling period; the final interval
    of a run may be shorter).
    """

    __slots__ = _SAMPLE_FIELDS + ("stalls",)

    def __init__(self, *, cycle: int, cycles: int, level: int,
                 rob_occ: int, rob_cap: int, iq_occ: int, iq_cap: int,
                 lsq_occ: int, lsq_cap: int, mshr_l1d: int, mshr_l2: int,
                 committed: int, issued: int, dispatched: int,
                 l2_misses: int, stop_alloc: int,
                 stalls: dict[str, int] | None = None) -> None:
        self.cycle = cycle
        self.cycles = cycles
        self.level = level
        self.rob_occ = rob_occ
        self.rob_cap = rob_cap
        self.iq_occ = iq_occ
        self.iq_cap = iq_cap
        self.lsq_occ = lsq_occ
        self.lsq_cap = lsq_cap
        self.mshr_l1d = mshr_l1d
        self.mshr_l2 = mshr_l2
        self.committed = committed
        self.issued = issued
        self.dispatched = dispatched
        self.l2_misses = l2_misses
        self.stop_alloc = stop_alloc
        self.stalls = stalls or {}

    def as_dict(self) -> dict:
        d = {name: getattr(self, name) for name in _SAMPLE_FIELDS}
        d["stalls"] = dict(self.stalls)
        return d

    def __eq__(self, other) -> bool:
        if not isinstance(other, IntervalSample):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return (f"<sample @{self.cycle} L{self.level} "
                f"rob={self.rob_occ}/{self.rob_cap} "
                f"committed={self.committed}/{self.cycles}cy>")


class PolicyEvent:
    """One point event: a level transition, drain onset, or L2 miss."""

    __slots__ = ("cycle", "kind", "level", "detail")

    def __init__(self, cycle: int, kind: str, level: int,
                 detail: str = "") -> None:
        self.cycle = cycle
        self.kind = kind
        self.level = level
        self.detail = detail

    def as_dict(self) -> dict:
        return {"cycle": self.cycle, "kind": self.kind,
                "level": self.level, "detail": self.detail}

    def __eq__(self, other) -> bool:
        if not isinstance(other, PolicyEvent):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return f"<{self.kind} @{self.cycle} L{self.level} {self.detail}>"


class Telemetry:
    """The recording: bounded sample/event rings + exact run totals."""

    def __init__(self, period: int, capacity: int = 4096,
                 event_capacity: int = 8192) -> None:
        if period < 1:
            raise ValueError("sampling period must be >= 1 cycle")
        if capacity < 1 or event_capacity < 1:
            raise ValueError("ring capacities must be >= 1")
        self.period = period
        self.capacity = capacity
        self.event_capacity = event_capacity
        self.samples: deque[IntervalSample] = deque(maxlen=capacity)
        self.events: deque[PolicyEvent] = deque(maxlen=event_capacity)
        #: run identity (program, model, width, sim_version, ...) set by
        #: the probe at attach time; free-form, JSON-encodable values
        self.meta: dict[str, object] = {}
        # ---- totals that survive ring wraparound ----
        self.samples_emitted = 0
        self.events_emitted = 0
        self.event_counts: dict[str, int] = {}
        self.stall_totals: dict[str, int] = {}
        self.cycles_covered = 0
        self.committed_total = 0
        self.issued_total = 0
        self.l2_miss_total = 0
        self.peak_rob = 0
        self.peak_iq = 0
        self.peak_lsq = 0

    # ------------------------------------------------------------------
    # recording

    def add_sample(self, sample: IntervalSample) -> None:
        self.samples.append(sample)
        self.samples_emitted += 1
        self.cycles_covered += sample.cycles
        self.committed_total += sample.committed
        self.issued_total += sample.issued
        self.l2_miss_total += sample.l2_misses
        if sample.rob_occ > self.peak_rob:
            self.peak_rob = sample.rob_occ
        if sample.iq_occ > self.peak_iq:
            self.peak_iq = sample.iq_occ
        if sample.lsq_occ > self.peak_lsq:
            self.peak_lsq = sample.lsq_occ
        for reason, slots in sample.stalls.items():
            self.stall_totals[reason] = (
                self.stall_totals.get(reason, 0) + slots)

    def add_event(self, event: PolicyEvent) -> None:
        self.events.append(event)
        self.events_emitted += 1
        self.event_counts[event.kind] = (
            self.event_counts.get(event.kind, 0) + 1)

    # ------------------------------------------------------------------
    # series accessors (over the retained ring window)

    def levels(self) -> list[int]:
        return [s.level for s in self.samples]

    def ipcs(self) -> list[float]:
        return [s.committed / s.cycles if s.cycles else 0.0
                for s in self.samples]

    def occupancies(self, resource: str) -> list[int]:
        attr = f"{resource}_occ"
        return [getattr(s, attr) for s in self.samples]

    def events_of(self, kind: str) -> list[PolicyEvent]:
        return [e for e in self.events if e.kind == kind]

    def __len__(self) -> int:
        return len(self.samples)

    # ------------------------------------------------------------------
    # JSONL export / import

    def _meta_record(self) -> dict:
        return {
            "type": "meta",
            "period": self.period,
            "capacity": self.capacity,
            "event_capacity": self.event_capacity,
            "meta": self.meta,
            "samples_emitted": self.samples_emitted,
            "events_emitted": self.events_emitted,
            "event_counts": self.event_counts,
            "stall_totals": self.stall_totals,
            "cycles_covered": self.cycles_covered,
            "committed_total": self.committed_total,
            "issued_total": self.issued_total,
            "l2_miss_total": self.l2_miss_total,
            "peak_rob": self.peak_rob,
            "peak_iq": self.peak_iq,
            "peak_lsq": self.peak_lsq,
        }

    def to_jsonl(self, path: str) -> str:
        """Write the recording as one JSON object per line.

        The write is atomic (temp file + ``os.replace``) like the result
        store's: a campaign killed mid-write never leaves a truncated
        artifact behind.
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self._meta_record(), sort_keys=True) + "\n")
            for sample in self.samples:
                record = {"type": "sample", **sample.as_dict()}
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            for event in self.events:
                record = {"type": "event", **event.as_dict()}
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    @classmethod
    def from_jsonl(cls, path: str) -> "Telemetry":
        """Reconstruct a recording written by :meth:`to_jsonl`.

        Ring contents and totals are restored verbatim from the file —
        records that wrapped out before export are gone, but the meta
        totals still account for them exactly.
        """
        with open(path, "r", encoding="utf-8") as fh:
            first = fh.readline()
            if not first:
                raise ValueError(f"{path}: empty telemetry artifact")
            head = json.loads(first)
            if head.get("type") != "meta":
                raise ValueError(f"{path}: missing meta header line")
            tel = cls(period=head["period"], capacity=head["capacity"],
                      event_capacity=head["event_capacity"])
            tel.meta = dict(head.get("meta", {}))
            for record in fh:
                rec = json.loads(record)
                kind = rec.pop("type", None)
                if kind == "sample":
                    tel.samples.append(IntervalSample(**rec))
                elif kind == "event":
                    tel.events.append(PolicyEvent(**rec))
        # totals come from the header, not from replaying the (possibly
        # wrapped) ring contents
        tel.samples_emitted = head["samples_emitted"]
        tel.events_emitted = head["events_emitted"]
        tel.event_counts = dict(head["event_counts"])
        tel.stall_totals = dict(head["stall_totals"])
        tel.cycles_covered = head["cycles_covered"]
        tel.committed_total = head["committed_total"]
        tel.issued_total = head["issued_total"]
        tel.l2_miss_total = head["l2_miss_total"]
        tel.peak_rob = head["peak_rob"]
        tel.peak_iq = head["peak_iq"]
        tel.peak_lsq = head["peak_lsq"]
        return tel

    # ------------------------------------------------------------------
    # CSV export

    def samples_csv(self, path: str) -> str:
        """Write the retained samples as a fixed-column CSV table."""
        header = list(_SAMPLE_FIELDS) + [f"stall_{r}" for r in STALL_REASONS]
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(header)
            for s in self.samples:
                row = [getattr(s, name) for name in _SAMPLE_FIELDS]
                row += [s.stalls.get(r, 0) for r in STALL_REASONS]
                writer.writerow(row)
        return path

    def events_csv(self, path: str) -> str:
        """Write the retained events as a CSV table."""
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            writer.writerow(["cycle", "kind", "level", "detail"])
            for e in self.events:
                writer.writerow([e.cycle, e.kind, e.level, e.detail])
        return path


def load_samples_csv(path: str) -> list[IntervalSample]:
    """Read a :meth:`Telemetry.samples_csv` table back into samples."""
    samples = []
    with open(path, "r", newline="", encoding="utf-8") as fh:
        for row in csv.DictReader(fh):
            stalls = {}
            for reason in STALL_REASONS:
                slots = int(row[f"stall_{reason}"])
                if slots:
                    stalls[reason] = slots
            samples.append(IntervalSample(
                stalls=stalls,
                **{name: int(row[name]) for name in _SAMPLE_FIELDS}))
    return samples


def load_events_csv(path: str) -> list[PolicyEvent]:
    """Read a :meth:`Telemetry.events_csv` table back into events."""
    with open(path, "r", newline="", encoding="utf-8") as fh:
        return [PolicyEvent(int(row["cycle"]), row["kind"],
                            int(row["level"]), row["detail"])
                for row in csv.DictReader(fh)]
