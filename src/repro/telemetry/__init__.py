"""Time-series telemetry for the simulator: probes, recordings, reports.

The paper's claims are temporal — level transitions chasing miss
clusters (Figure 5/6), drain stalls, phase behaviour — but a
:class:`~repro.stats.SimulationResult` only carries end-of-run
aggregates.  This package records the trajectory: a
:class:`TelemetryProbe` samples a running
:class:`~repro.pipeline.Processor` every ``period`` cycles into a
ring-buffered :class:`Telemetry` recording (per-interval window level,
ROB/IQ/LSQ occupancy, MSHR in-flight, width utilisation, CPI-stack
stall buckets) plus point events (grow/shrink, stall-to-drain onset,
demand L2-miss detections), exportable as JSONL/CSV and rendered by
``python -m repro.telemetry``.

Two invariants define the layer, and the test suite enforces both:

* **Zero cost when off.**  Probes install by bound-method shadowing
  (instance attributes over class methods), the same trick as
  :mod:`repro.debug`: an unprobed processor executes the original
  methods with no telemetry branch on any per-cycle path.
* **Digest neutrality.**  Sampling performs only pure reads — never a
  recording observation — so a probed run's canonical stat digest
  (:func:`repro.verify.digest.result_digest`) is bit-identical to an
  unprobed one, and telemetry artifacts can be produced for cached
  campaigns without invalidating a single cache entry
  (``telemetry_period`` is deliberately *not* part of the result key).

Entry points: ``simulate(..., telemetry=TelemetryProbe(...))`` for one
run; ``python -m repro.experiments --telemetry [PERIOD]`` for per-job
artifacts under ``.simcache/telemetry/``; ``python -m repro.telemetry``
to run and render a single instrumented simulation (``--profile`` adds
per-stage host self-time via :class:`StageProfiler`).
"""

from repro.telemetry.probe import TelemetryProbe
from repro.telemetry.profiler import LatencyReservoir, StageProfiler
from repro.telemetry.recorder import (
    EVENT_KINDS,
    STALL_REASONS,
    IntervalSample,
    PolicyEvent,
    Telemetry,
    load_events_csv,
    load_samples_csv,
)
from repro.telemetry.report import (
    grow_miss_coincidence,
    render_report,
)

__all__ = [
    "EVENT_KINDS",
    "STALL_REASONS",
    "IntervalSample",
    "LatencyReservoir",
    "PolicyEvent",
    "StageProfiler",
    "Telemetry",
    "TelemetryProbe",
    "grow_miss_coincidence",
    "load_events_csv",
    "load_samples_csv",
    "render_report",
]
