"""The sampling probe: attaches telemetry to a running processor.

Zero cost when off
    A probe is installed by *bound-method shadowing*, exactly like the
    :mod:`repro.debug` sanitizer: wrapper functions are assigned as
    instance attributes (``proc.advance``, ``proc._apply_level``), which
    Python resolves before the class methods.  A processor without a
    probe attached runs the original methods with no telemetry branch
    anywhere on the per-cycle path — ``proc.telemetry`` stays ``None``
    and is never consulted by pipeline code.

Digest neutrality
    Sampling only performs *pure* reads: window occupancies/capacities,
    :meth:`MSHRFile.in_flight <repro.memory.mshr.MSHRFile.in_flight>`
    (the non-reaping observation), stat counter values and the
    hierarchy's demand-miss count.  It never calls an observation that
    records (``has_room``/``allocate_delay`` — the PR 2 bug class), so
    a telemetry run's canonical stat digest is bit-identical to a bare
    run.  ``tests/test_telemetry.py`` locks this in with a verify-style
    on/off digest-equality regression and ``python -m repro.telemetry
    smoke`` re-checks it in CI.

Interval semantics under fast-forward
    Samples are recorded at every crossed period edge *after* the main
    loop advances the clock.  A fast-forward jump that crosses several
    edges freezes the machine state, so each skipped edge records that
    frozen occupancy picture — but the jump's *accounting* (commit
    deltas, lump-charged stall slots) all lands in the first interval
    the jump crosses; later intervals inside the jump read as zeros.
    See ``docs/observability.md`` for how to read the resulting
    timelines.
"""

from __future__ import annotations

from repro.telemetry.recorder import IntervalSample, PolicyEvent, Telemetry


class TelemetryProbe:
    """Samples one processor every ``period`` cycles into a ring.

    Usage (what ``simulate(..., telemetry=probe)`` does internally)::

        probe = TelemetryProbe(period=256)
        probe.attach(proc)            # after reset_measurement()
        proc.run(until_committed=n)
        telemetry = probe.finish()    # flushes the partial last interval

    Recorded per interval edge: window level, ROB/IQ/LSQ occupancy and
    active capacity, MSHR in-flight counts, committed/issued/dispatched
    micro-op deltas (width utilisation), demand L2-miss and stop-alloc
    deltas, and per-bucket CPI-stack stall slots.  Recorded as events:
    every ``grow``/``shrink`` level transition, the onset of a
    stall-to-drain episode, every demand L2-miss detection, and — when
    the attached policy is a learned controller exposing a ``listener``
    hook (:class:`repro.core.BanditWindowPolicy`) — every arm
    selection (``pull``) and per-window score (``reward``).

    ``profile=True`` additionally attaches a
    :class:`~repro.telemetry.profiler.StageProfiler` measuring host
    wall-clock self-time per pipeline stage (host-side only; simulated
    timing is unaffected either way).
    """

    def __init__(self, period: int = 256, capacity: int = 4096,
                 event_capacity: int = 8192, profile: bool = False) -> None:
        self.period = period
        self.telemetry = Telemetry(period=period, capacity=capacity,
                                   event_capacity=event_capacity)
        self.profiler = None
        if profile:
            from repro.telemetry.profiler import StageProfiler
            self.profiler = StageProfiler()
        self.proc = None
        self._saved: list[tuple[str, bool, object]] = []
        self._detached = False
        self._was_draining = False
        self._listener_policy = None

    # ------------------------------------------------------------------
    # attach / detach

    def _shadow(self, name: str, wrapper) -> None:
        """Install ``wrapper`` as an instance attribute, remembering what
        (if anything) was shadowed so :meth:`detach` can restore it —
        including a sanitizer wrapper installed before us."""
        proc = self.proc
        had = name in proc.__dict__
        self._saved.append((name, had, proc.__dict__.get(name)))
        setattr(proc, name, wrapper)

    def attach(self, proc) -> "TelemetryProbe":
        """Install the probe on ``proc``; sampling starts at the current
        cycle (attach at the warmup/measurement boundary to cover
        exactly the measured region)."""
        if self.proc is not None:
            raise RuntimeError("probe is already attached")
        self.proc = proc
        proc.telemetry = self
        tel = self.telemetry
        from repro.pipeline.core import SIM_VERSION
        tel.meta.update({
            "program": proc.trace.name,
            "model": proc.config.model.value,
            "level": proc.config.level,
            "width": proc.config.width,
            "sim_version": SIM_VERSION,
            "start_cycle": proc.cycle,
        })
        self._prev_edge = proc.cycle
        self._next_edge = proc.cycle + self.period
        self._take_baseline()

        period = self.period
        orig_advance = proc.advance

        def advance(delta: int) -> None:
            orig_advance(delta)
            if proc.cycle >= self._next_edge:
                self._cross_edges()
            # stall-to-drain onset: the controller wants to shrink but
            # the region to vacate is still occupied (_policy_stage set
            # _stop_alloc this cycle)
            if proc._stop_alloc:
                if not self._was_draining:
                    self._was_draining = True
                    tel.add_event(PolicyEvent(proc.cycle, "drain",
                                              proc.level, "stop_alloc"))
            elif self._was_draining:
                self._was_draining = False

        self._shadow("advance", advance)

        orig_apply = proc._apply_level

        def _apply_level(new_level: int) -> None:
            old = proc.level
            orig_apply(new_level)
            kind = "grow" if new_level > old else "shrink"
            tel.add_event(PolicyEvent(proc.cycle, kind, new_level,
                                      f"{old}->{new_level}"))

        self._shadow("_apply_level", _apply_level)

        proc.hierarchy.add_l2_miss_listener(self._on_l2_miss)
        # learned controllers expose a per-decision observer hook: every
        # arm selection ("pull") and per-window score ("reward") becomes
        # a policy event.  The hook only records — digest neutrality is
        # the policy's contract (its decisions never read the listener).
        policy = getattr(proc, "policy", None)
        if hasattr(policy, "listener"):
            self._listener_policy = policy
            policy.listener = self._on_policy_event
        if self.profiler is not None:
            self.profiler.attach(proc)
        return self

    def detach(self) -> None:
        """Remove the probe's wrappers, restoring whatever they
        shadowed.  The L2-miss listener cannot be unregistered from the
        hierarchy, so it goes inert instead."""
        proc = self.proc
        if proc is None or self._detached:
            return
        for name, had, prev in reversed(self._saved):
            if had:
                setattr(proc, name, prev)
            else:
                del proc.__dict__[name]
        self._saved.clear()
        if self._listener_policy is not None:
            self._listener_policy.listener = None
            self._listener_policy = None
        proc.telemetry = None
        self._detached = True

    def _on_l2_miss(self, detect_cycle: int) -> None:
        if self._detached:
            return
        self.telemetry.add_event(PolicyEvent(
            detect_cycle, "l2_miss", self.proc.level))

    def _on_policy_event(self, cycle: int, kind: str, level: int,
                         detail: str) -> None:
        if self._detached:
            return
        self.telemetry.add_event(PolicyEvent(cycle, kind, level, detail))

    # ------------------------------------------------------------------
    # sampling

    def _take_baseline(self) -> None:
        proc = self.proc
        stats = proc.stats
        self._committed = stats.committed_uops
        self._issued = stats.issued_uops
        self._dispatched = stats.dispatched_uops
        self._stop_alloc = stats.stop_alloc_cycles
        self._l2_misses = proc.hierarchy.demand_l2_misses
        self._stalls = dict(stats.stall_slots)

    def _cross_edges(self) -> None:
        proc = self.proc
        while proc.cycle >= self._next_edge:
            self._record_sample(self._next_edge)
            self._next_edge += self.period

    def _record_sample(self, edge: int) -> None:
        proc = self.proc
        stats = proc.stats
        window = proc.window
        hierarchy = proc.hierarchy
        stalls_now = stats.stall_slots
        prev_stalls = self._stalls
        delta_stalls = {}
        for reason, slots in stalls_now.items():
            delta = slots - prev_stalls.get(reason, 0)
            if delta:
                delta_stalls[reason] = delta
        committed = stats.committed_uops
        issued = stats.issued_uops
        dispatched = stats.dispatched_uops
        stop_alloc = stats.stop_alloc_cycles
        l2_misses = hierarchy.demand_l2_misses
        self.telemetry.add_sample(IntervalSample(
            cycle=edge,
            cycles=edge - self._prev_edge,
            level=proc.level,
            rob_occ=window.rob.occupancy, rob_cap=window.rob.capacity,
            iq_occ=window.iq.occupancy, iq_cap=window.iq.capacity,
            lsq_occ=window.lsq.occupancy, lsq_cap=window.lsq.capacity,
            mshr_l1d=hierarchy.l1d_mshr.in_flight(edge),
            mshr_l2=hierarchy.l2_mshr.in_flight(edge),
            committed=committed - self._committed,
            issued=issued - self._issued,
            dispatched=dispatched - self._dispatched,
            l2_misses=l2_misses - self._l2_misses,
            stop_alloc=stop_alloc - self._stop_alloc,
            stalls=delta_stalls))
        self._prev_edge = edge
        self._committed = committed
        self._issued = issued
        self._dispatched = dispatched
        self._stop_alloc = stop_alloc
        self._l2_misses = l2_misses
        self._stalls = dict(stalls_now)

    def finish(self) -> Telemetry:
        """Flush the partial final interval and return the recording.

        Idempotent per attach; the probe stays attached (a subsequent
        ``run`` would keep sampling) — call :meth:`detach` to remove it.
        """
        proc = self.proc
        if proc is None:
            raise RuntimeError("probe was never attached")
        stats = proc.stats
        # the main loop's trace-drain exit skips the final advance(), so
        # the last step's activity can sit past the last crossed edge
        # with the clock unmoved — flush whenever anything changed, even
        # into a zero-cycle tail sample, to keep delta sums exact
        moved = (proc.cycle > self._prev_edge
                 or stats.committed_uops != self._committed
                 or stats.issued_uops != self._issued
                 or stats.dispatched_uops != self._dispatched
                 or stats.stop_alloc_cycles != self._stop_alloc
                 or proc.hierarchy.demand_l2_misses != self._l2_misses
                 or stats.stall_slots != self._stalls)
        if moved:
            self._record_sample(proc.cycle)
            # re-align the next edge past the flushed partial interval
            self._next_edge = proc.cycle + self.period
        self.telemetry.meta["end_cycle"] = proc.cycle
        if self.profiler is not None:
            self.profiler.finish()
        return self.telemetry
