"""Runahead execution comparator (Section 5.7 of the paper).

Runahead execution (Mutlu et al., HPCA'03) exploits MLP with a *small*
window: when a load misses the L2 and blocks the ROB head, the processor
checkpoints, pseudo-retires instructions past the blocked load (the load
itself gets an INV result), and keeps fetching/executing.  Valid loads on
this runahead path that miss the L2 start their fills early — that is the
MLP.  When the original miss returns, everything is flushed and execution
restarts from the checkpoint; re-executed loads now hit the cache.

The engine plugs into :class:`repro.pipeline.core.Processor` at a handful
of hook points and implements:

* entry/exit with the checkpointed fetch position,
* INV propagation through the dataflow (inherited by the core's wakeup),
* a 512-byte runahead cache for memory dependences in runahead mode,
* the runahead cause status table (RCST) of the MICRO'05 enhancements
  paper, which suppresses episodes predicted useless (the milc problem
  discussed in Section 5.7).
"""

from repro.runahead.engine import RunaheadEngine
from repro.runahead.rcst import RunaheadCauseStatusTable

__all__ = ["RunaheadEngine", "RunaheadCauseStatusTable"]
