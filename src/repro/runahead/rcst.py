"""Runahead cause status table.

A small PC-indexed table of 2-bit confidence counters predicting whether
entering runahead for a given L2-missing load will be *useful* (i.e.,
whether the episode will uncover additional L2 misses).  Mutlu et al.
(MICRO'05) introduced it to suppress useless episodes; Section 5.7 of the
reproduced paper notes the prediction is imperfect — milc still loses.
"""

from __future__ import annotations

from collections import OrderedDict


class RunaheadCauseStatusTable:
    """LRU table of 2-bit useful/useless counters, keyed by load PC."""

    #: counters start weakly-useful so the first episode is always tried.
    INITIAL = 2

    def __init__(self, entries: int = 64) -> None:
        if entries < 1:
            raise ValueError("RCST needs at least one entry")
        self.entries = entries
        self._table: OrderedDict[int, int] = OrderedDict()
        self.suppressions = 0

    def predicts_useful(self, pc: int) -> bool:
        """Should we enter runahead for a miss caused by ``pc``?"""
        counter = self._table.get(pc)
        if counter is None:
            return True
        self._table.move_to_end(pc)
        if counter >= 2:
            return True
        self.suppressions += 1
        return False

    def update(self, pc: int, useful: bool) -> None:
        """Train with the outcome of a completed episode."""
        counter = self._table.get(pc, self.INITIAL)
        counter = min(3, counter + 1) if useful else max(0, counter - 1)
        if pc not in self._table and len(self._table) >= self.entries:
            self._table.popitem(last=False)
        self._table[pc] = counter
        self._table.move_to_end(pc)

    def __len__(self) -> int:
        return len(self._table)
