"""The runahead execution engine.

Composition-based: :class:`repro.pipeline.core.Processor` owns an engine
instance when running the RUNAHEAD model and calls into it from the
commit stage (entry check, pseudo-retirement), the load/store issue path
(runahead cache) and the event loop (exit).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runahead.rcst import RunaheadCauseStatusTable

if TYPE_CHECKING:
    from repro.pipeline.core import InFlightOp, Processor

# event kind shared with the core's event loop
_EV_RA_EXIT = 2


class RunaheadEngine:
    """Checkpoint / runahead-mode / restore machinery."""

    def __init__(self, processor: "Processor") -> None:
        self.processor = processor
        cfg = processor.config.runahead
        self.rcst = (RunaheadCauseStatusTable(cfg.rcst_entries)
                     if cfg.use_rcst else None)
        self.useful_threshold = cfg.rcst_useful_threshold
        #: words the (tiny) runahead cache can hold
        self.cache_words = max(1, cfg.runahead_cache_bytes // 8)
        self._cache: dict[int, bool] = {}
        self.active = False
        self._trigger: "InFlightOp | None" = None
        self._checkpoint_idx = 0
        self._episode_misses = 0
        self._episode_fills = 0
        self._rejected_seq = -1
        # statistics
        self.episodes = 0
        self.useless_episodes = 0
        self.pseudo_retired = 0
        self.exit_penalty = 1   # paper assumes no checkpoint/resume penalty

    # ------------------------------------------------------------------
    # entry

    def consider_entry(self, op: "InFlightOp", cycle: int) -> bool:
        """The ROB head is an issued, incomplete, L2-missing load —
        enter runahead unless the episode is predicted useless or short.

        Short periods — e.g. a re-executed load merging into a fill a
        previous episode already started — cost a full pipeline flush for
        little prefetching; the MICRO'05 enhancements reject them, and so
        do we (minimum remaining latency of half the memory latency).
        """
        if self.active or op.seq == self._rejected_seq:
            return False
        min_period = self.processor.config.memory.min_latency // 2
        if op.complete_cycle - cycle < min_period:
            self._rejected_seq = op.seq
            return False    # fill mostly done; a flush would cost more
        if op.trace_idx < 0:
            return False    # never trigger on a wrong-path load
        if self.rcst is not None and not self.rcst.predicts_useful(op.uop.pc):
            self._rejected_seq = op.seq
            return False
        self.active = True
        self.episodes += 1
        self._trigger = op
        self._checkpoint_idx = op.trace_idx
        self._episode_misses = 0
        self._episode_fills = 0
        self._cache.clear()
        # The blocked load gets an INV result immediately; its fill keeps
        # going underneath and times our exit.  Waking its consumers here
        # propagates INV through the dataflow so dependents pseudo-retire
        # instead of waiting for data that will never arrive.
        op.inv = True
        op.complete = True
        proc = self.processor
        op.woken_at = cycle
        proc._wake_consumers(op)
        proc._schedule(op.complete_cycle, _EV_RA_EXIT, op)
        return True

    # ------------------------------------------------------------------
    # runahead-mode behaviour

    def can_pseudo_retire(self, op: "InFlightOp") -> bool:
        """In runahead mode the head retires once complete or INV."""
        return op.complete or op.inv

    def pseudo_retire(self, op: "InFlightOp", cycle: int) -> None:
        self.pseudo_retired += 1
        if op.uop.is_store and not op.inv:
            self.cache_write(op.uop.addr & ~7)

    def cache_write(self, word: int) -> None:
        """Record a store's word in the runahead cache (bounded FIFO)."""
        if word in self._cache:
            return
        if len(self._cache) >= self.cache_words:
            self._cache.pop(next(iter(self._cache)))
        self._cache[word] = True

    def cache_hit(self, word: int) -> bool:
        return word in self._cache

    #: maximum memory fills one episode may initiate — the hardware
    #: analogue is the MSHR capacity a runahead period can occupy.
    EPISODE_FILL_BUDGET = 32

    def may_issue_fill(self, hierarchy, cycle: int) -> bool:
        """Whether a runahead load may start a memory access.

        Bounded per episode so runahead cannot mortgage unbounded memory
        bandwidth against the future (the fills it starts must be ones
        the post-exit re-execution can actually consume).  The budget is
        charged in :meth:`note_episode_miss`, i.e. only for accesses that
        actually start a DRAM fill — hits cost nothing.
        """
        if self._episode_fills >= self.EPISODE_FILL_BUDGET:
            return False
        return hierarchy.mshr_room(cycle)

    def note_episode_miss(self) -> None:
        """A valid runahead load missed the L2 — the episode is useful
        (and one unit of the episode's fill budget is consumed)."""
        self._episode_misses += 1
        self._episode_fills += 1

    # ------------------------------------------------------------------
    # exit

    def exit_runahead(self, cycle: int) -> None:
        """The triggering miss returned: flush and restore the checkpoint."""
        if not self.active:
            return
        proc = self.processor
        trigger = self._trigger
        useful = self._episode_misses >= self.useful_threshold
        if not useful:
            self.useless_episodes += 1
        if self.rcst is not None and trigger is not None:
            self.rcst.update(trigger.uop.pc, useful)
        # Flush the whole machine: every in-flight op is younger than the
        # checkpoint (the trigger pseudo-retired at entry).
        proc._squash_after(0)
        proc._wrong_mode = False
        proc._wrong_branch = None
        proc._trace_idx = self._checkpoint_idx
        proc._fetch_stall_until = max(proc._fetch_stall_until,
                                      cycle + self.exit_penalty)
        proc._last_fetch_line = -1
        self._cache.clear()
        self.active = False
        self._trigger = None
