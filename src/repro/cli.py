"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate`` — run one program on one model and print the results.
* ``compare``  — run one program on every model side by side.
* ``smt``      — co-run 2-4 programs on one SMT core with a partitioned
  window ("a+b" syntax) and print per-thread results + throughput.
* ``programs`` — list the available workload profiles.
* ``levels``   — print the window resource level table (paper Table 2).
"""

from __future__ import annotations

import argparse

from repro.config import (
    LEVEL_TABLE,
    base_config,
    dynamic_config,
    fixed_config,
    ideal_config,
    runahead_config,
)
from repro.energy import EnergyModel
from repro.pipeline import simulate
from repro.workloads import (PROFILES, UnknownProgramError, ensure_program,
                             trace_for_program)
from repro.workloads.riscv import riscv_program_names

_MODELS = {
    "base": lambda level: base_config(),
    "fixed": fixed_config,
    "ideal": ideal_config,
    "dynamic": lambda level: dynamic_config(level),
    "runahead": lambda level: runahead_config(),
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program", metavar="PROGRAM",
                        help="SPEC2006 profile name or riscv:<kernel> "
                             "(see 'python -m repro programs')")
    parser.add_argument("--measure", type=int, default=15_000)
    parser.add_argument("--warmup", type=int, default=4_000)
    parser.add_argument("--seed", type=int, default=1)


def _simulate(args, model: str, level: int):
    try:
        trace = trace_for_program(args.program,
                                  n_ops=args.warmup + args.measure + 1000,
                                  seed=args.seed)
    except UnknownProgramError as exc:
        raise SystemExit(str(exc)) from None
    config = _MODELS[model](level)
    result = simulate(config, trace, warmup=args.warmup,
                      measure=args.measure)
    EnergyModel().annotate(result, config)
    return result


def cmd_simulate(args) -> int:
    result = _simulate(args, args.model, args.level)
    print(result.summary_line())
    print(f"  mispredict rate : {result.mispredict_rate:.2%}")
    print(f"  energy          : {result.energy_nj / 1e3:.1f} uJ   "
          f"EDP {result.edp:.3g}")
    if result.level_residency:
        shares = ", ".join(f"L{k}: {v:.0%}"
                           for k, v in result.level_residency.items())
        print(f"  level residency : {shares}")
    if args.energy_breakdown:
        from repro.energy import render_breakdown
        config = _MODELS[args.model](args.level)
        print(render_breakdown(result, config))
    return 0


def cmd_compare(args) -> int:
    base = _simulate(args, "base", 1)
    rows = [("base (fix L1)", base)]
    for level in (2, 3):
        rows.append((f"fixed L{level}", _simulate(args, "fixed", level)))
    rows.append(("dynamic", _simulate(args, "dynamic", 3)))
    rows.append(("runahead", _simulate(args, "runahead", 1)))
    print(f"{'model':<14} {'IPC':>7} {'vs base':>8} {'loadlat':>8} "
          f"{'MLP':>6} {'1/EDP':>7}")
    for name, res in rows:
        inv_edp = base.edp / res.edp if res.edp else 0.0
        print(f"{name:<14} {res.ipc:>7.3f} {res.ipc / base.ipc:>7.2f}x "
              f"{res.avg_load_latency:>8.1f} {res.mlp:>6.2f} "
              f"{inv_edp:>7.2f}")
    return 0


def cmd_smt(args) -> int:
    from repro.config import smt_config
    from repro.pipeline import simulate_smt

    programs = args.programs.split("+")
    try:
        for part in programs:
            ensure_program(part)
    except UnknownProgramError as exc:
        raise SystemExit(str(exc)) from None
    if not 1 <= len(programs) <= 4:
        raise SystemExit("SMT runs 1-4 threads, e.g. libquantum+sjeng")
    # headroom: a fast thread cannot pause while slower threads reach
    # the per-thread commit target, so its trace must run long
    n_ops = (args.warmup + args.measure) * 6
    traces = [trace_for_program(p, n_ops=n_ops, seed=args.seed)
              for p in programs]
    config = smt_config(threads=len(programs), partition=args.partition,
                        fetch=args.fetch, level=args.level)
    run = simulate_smt(config, traces, warmup=args.warmup,
                       measure=args.measure)
    for res in run.threads:
        print(res.summary_line())
    agg = run.aggregate
    print(f"  partition  : {args.partition} (fetch: {args.fetch}, "
          f"L{args.level} window)")
    print(f"  throughput : {run.throughput():.3f} uops/cycle over "
          f"{agg.cycles} shared cycles")
    return 0


def cmd_programs(args) -> int:
    print(f"{'program':<12} {'type':<5} {'category':<18} "
          f"{'paper load latency':>18}")
    for name, prof in PROFILES.items():
        category = ("memory-intensive" if prof.memory_intensive
                    else "compute-intensive")
        print(f"{name:<12} {prof.category:<5} {category:<18} "
              f"{prof.paper_load_latency:>15.0f} cyc")
    corpus = riscv_program_names()
    if corpus:
        print("\nriscv trace corpus (benchmarks/riscv):")
        for name in corpus:
            print(f"  {name}")
    return 0


def cmd_levels(args) -> int:
    print(f"{'level':>5} {'IQ':>5} {'ROB':>5} {'LSQ':>5} "
          f"{'IQ depth':>9} {'extra wakeup':>13} {'extra bpenalty':>15}")
    for i, lvl in enumerate(LEVEL_TABLE, start=1):
        print(f"{i:>5} {lvl.iq_entries:>5} {lvl.rob_entries:>5} "
              f"{lvl.lsq_entries:>5} {lvl.iq_depth:>9} "
              f"{lvl.extra_wakeup_delay:>13} {lvl.extra_branch_penalty:>15}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="MLP-aware dynamic instruction window "
                                  "resizing — reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="run one program on one model")
    _add_common(p_sim)
    p_sim.add_argument("--model", choices=sorted(_MODELS), default="dynamic")
    p_sim.add_argument("--level", type=int, default=3,
                       help="fixed level / dynamic max level")
    p_sim.add_argument("--energy-breakdown", action="store_true",
                       help="print the per-component energy split")
    p_sim.set_defaults(func=cmd_simulate)

    p_cmp = sub.add_parser("compare", help="all models on one program")
    _add_common(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_smt = sub.add_parser(
        "smt", help="co-run programs on one SMT core ('a+b' syntax)")
    p_smt.add_argument("programs", metavar="PROGRAMS",
                       help="'+'-joined profile names, e.g. "
                            "libquantum+sjeng (1-4 threads)")
    p_smt.add_argument("--partition", default="mlp",
                       choices=("mlp", "equal", "shared"),
                       help="window partition policy (default: mlp)")
    p_smt.add_argument("--fetch", default="mlp",
                       choices=("mlp", "icount", "roundrobin"),
                       help="thread fetch selector (default: mlp)")
    p_smt.add_argument("--level", type=int, default=3,
                       help="provisioned window level (default: 3)")
    p_smt.add_argument("--measure", type=int, default=8_000)
    p_smt.add_argument("--warmup", type=int, default=3_000)
    p_smt.add_argument("--seed", type=int, default=1)
    p_smt.set_defaults(func=cmd_smt)

    p_prog = sub.add_parser("programs", help="list workload profiles")
    p_prog.set_defaults(func=cmd_programs)

    p_lvl = sub.add_parser("levels", help="print the level table")
    p_lvl.set_defaults(func=cmd_levels)

    p_val = sub.add_parser(
        "validate", help="self-check the reproduction's headline claims")
    p_val.set_defaults(func=lambda args: __import__(
        "repro.validation", fromlist=["main"]).main())

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
