"""Window partition policies for the SMT pipeline.

In the SMT scenario (:mod:`repro.pipeline.smt`) 2-4 hardware threads
share one physically provisioned ROB/IQ/LSQ :class:`~repro.pipeline.
resources.WindowSet`.  A *partition policy* maps the per-thread
resizing levels — each thread runs its own MLP phase detector — onto a
partition of the shared window: per-thread entry quotas that dispatch
enforces.  This is the SMT generalisation of the paper's single-thread
resizing: the thread inside a miss cluster gets the deep (slow)
partition, threads in ILP phases keep shallow fast ones.

Three policies:

``mlp``
    Quotas proportional to each thread's current resizing level (the
    per-resource entry counts of its level), re-apportioned whenever
    any thread's detector changes level.  A thread's pipeline depth
    (wakeup delay, branch penalty) tracks its *own* level, so an
    ILP-phase thread keeps the shallow fast window even while its
    neighbour holds most of the entries.

``equal``
    Static equal split of every resource, remainder to low thread ids.
    Depth is the smallest level whose ROB covers the quota — with one
    thread this degrades to the full window at the provisioned level,
    which is what makes the single-thread SMT ≡ baseline oracle hold.

``shared``
    No partitioning at all (every thread's quota is the full capacity);
    threads compete freely for entries.  The unmanaged baseline the
    figure compares against.

Invariants (checked by ``SMTProcessor.check_invariants`` and the
``python -m repro.verify smt`` oracles): for partitioned policies the
per-thread quotas are disjoint and sum *exactly* to the active capacity
of each resource, and every thread keeps at least one entry of each.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import ResourceLevel
    from repro.pipeline.resources import WindowSet

PARTITION_NAMES = ("mlp", "equal", "shared")


def _apportion(total: int, weights: Sequence[float]) -> list[int]:
    """Largest-remainder apportionment of ``total`` entries.

    Deterministic: floors first, then the remainder goes to the largest
    fractional parts (ties broken by position).  Every share is kept
    >= 1 by stealing from the largest share, so no thread is ever
    starved of a resource outright.
    """
    wsum = float(sum(weights))
    if wsum <= 0:
        weights = [1.0] * len(weights)
        wsum = float(len(weights))
    shares = [total * w / wsum for w in weights]
    quotas = [int(s) for s in shares]
    remainder = total - sum(quotas)
    order = sorted(range(len(weights)),
                   key=lambda i: (quotas[i] - shares[i], i))
    for i in order[:remainder]:
        quotas[i] += 1
    for i, q in enumerate(quotas):
        while quotas[i] < 1:
            donor = max(range(len(quotas)), key=lambda j: (quotas[j], -j))
            if quotas[donor] <= 1:
                break
            quotas[donor] -= 1
            quotas[i] += 1
    return quotas


class PartitionPolicy(ABC):
    """Maps per-thread resizing levels onto per-thread entry quotas."""

    name: str = "?"
    #: False when quotas may overlap (the shared-unmanaged baseline);
    #: the sum/disjointness invariants only apply when True.
    partitioned: bool = True

    def __init__(self, levels: Sequence["ResourceLevel"],
                 provision_level: int) -> None:
        self.levels = tuple(levels)
        self.provision_level = provision_level

    @abstractmethod
    def quotas(self, thread_levels: Sequence[int],
               window: "WindowSet") -> list[tuple[int, int, int]]:
        """Per-thread ``(iq, rob, lsq)`` quotas for the current levels."""

    def depth_level(self, tid: int, thread_levels: Sequence[int],
                    quota_rob: int) -> int:
        """The level whose pipeline-depth params the thread runs at."""
        return self.provision_level


class MLPPartitionPolicy(PartitionPolicy):
    """Quotas proportional to each thread's detector level sizes."""

    name = "mlp"

    def quotas(self, thread_levels, window):
        rows = [self.levels[lv - 1] for lv in thread_levels]
        iq = _apportion(window.iq.capacity, [r.iq_entries for r in rows])
        rob = _apportion(window.rob.capacity, [r.rob_entries for r in rows])
        lsq = _apportion(window.lsq.capacity, [r.lsq_entries for r in rows])
        return list(zip(iq, rob, lsq))

    def depth_level(self, tid, thread_levels, quota_rob):
        return thread_levels[tid]


class EqualPartitionPolicy(PartitionPolicy):
    """Static equal split; depth from the quota each thread ends up with."""

    name = "equal"

    def quotas(self, thread_levels, window):
        n = len(thread_levels)
        ones = [1.0] * n
        iq = _apportion(window.iq.capacity, ones)
        rob = _apportion(window.rob.capacity, ones)
        lsq = _apportion(window.lsq.capacity, ones)
        return list(zip(iq, rob, lsq))

    def depth_level(self, tid, thread_levels, quota_rob):
        for lv in range(1, self.provision_level + 1):
            if self.levels[lv - 1].rob_entries >= quota_rob:
                return lv
        return self.provision_level


class SharedPartitionPolicy(PartitionPolicy):
    """Unmanaged sharing: every thread may fill the whole window."""

    name = "shared"
    partitioned = False

    def quotas(self, thread_levels, window):
        full = (window.iq.capacity, window.rob.capacity,
                window.lsq.capacity)
        return [full for _ in thread_levels]


_PARTITIONS = {
    "mlp": MLPPartitionPolicy,
    "equal": EqualPartitionPolicy,
    "shared": SharedPartitionPolicy,
}


def make_partition_policy(name: str, levels: Sequence["ResourceLevel"],
                          provision_level: int) -> PartitionPolicy:
    try:
        cls = _PARTITIONS[name]
    except KeyError:
        raise ValueError(f"unknown partition policy {name!r} "
                         f"(known: {', '.join(PARTITION_NAMES)})") from None
    return cls(levels, provision_level)
