"""MLP-aware dynamic instruction window resizing (paper Figure 5).

The policy predicts that once an L2 cache miss occurs, more misses will
follow shortly (misses cluster in time — paper Figure 4), so MLP is
exploitable and the window should grow; once a full memory latency passes
without a miss, the cluster is over, ILP matters more, and the window
should shrink.

The pseudo-code from the paper, reproduced for reference::

    foreach cycle {
      if (L2_miss) {
        level = min(level + 1, max_level);          // enlarge
        shrink_timing = cycle + memory_latency;
        do_shrink = 0;
      } else if (cycle == shrink_timing) {
        do_shrink = 1;
      }
      if (level > 1 && do_shrink) {
        if (is_shrinkable(level)) {
          level = level - 1;                        // shrink
          shrink_timing = cycle + memory_latency;
          do_shrink = 0;
        } else {
          stop_alloc();   // drain the region to be removed
        }
      }
    }
"""

from __future__ import annotations

from collections import deque

from repro.core.policies import ResizeDecision, ResizingPolicy
from repro.pipeline.resources import WindowSet


class MLPAwarePolicy(ResizingPolicy):
    """The paper's LLC-miss-driven resizing policy.

    Invariants maintained across ticks:

    * ``1 <= level <= max_level`` always; growth saturates at
      ``max_level``, shrink stops at 1.
    * Level changes are unit steps per *decision* — a cycle with several
      pending misses can raise the level by more than one, but each
      shrink lowers it by exactly one, and a shrink is only granted
      after ``window.can_shrink_to`` confirms the vacated region is
      empty (until then the decision is ``stop_alloc``: drain).
    * ``shrink_timing`` is re-armed by every miss *and* by every granted
      shrink, so one miss-free memory latency is required per level on
      the way down (the paper's staircase descent, Figure 6).
    * ``_pending_misses`` stays sorted and duplicate-free; misses are
      coalesced per detection cycle (the pseudo-code's per-cycle
      ``L2_miss`` test).

    Observability: the policy itself carries only the ``enlarges`` /
    ``shrinks`` totals.  Per-event timelines come from the telemetry
    layer, which observes the applied transitions at
    ``Processor._apply_level`` (``grow``/``shrink`` events) and the
    trigger stream via the hierarchy's L2-miss listener — nothing here
    needs instrumenting (see ``docs/observability.md``).
    """

    def __init__(self, max_level: int, memory_latency: int,
                 shrink_latency: int | None = None) -> None:
        """``shrink_latency`` overrides the shrink timer duration (the
        paper uses the memory latency; the ablation benches sweep it)."""
        if max_level < 1:
            raise ValueError("max_level must be >= 1")
        if memory_latency < 1:
            raise ValueError("memory_latency must be >= 1")
        self.max_level = max_level
        self.memory_latency = memory_latency
        self.shrink_latency = (memory_latency if shrink_latency is None
                               else shrink_latency)
        self.level = 1
        self.shrink_timing = -1
        self.do_shrink = False
        #: distinct cycles with >= 1 pending demand L2 miss, in order
        self._pending_misses: deque[int] = deque()
        self.enlarges = 0
        self.shrinks = 0

    # ------------------------------------------------------------------

    def on_l2_miss(self, cycle: int) -> None:
        """Note a demand L2 miss detected at ``cycle``.

        Misses are coalesced per *cycle*: the pseudo-code tests a
        per-cycle ``L2_miss`` condition, so several misses detected in
        the same cycle raise the level only once — but misses in
        distinct cycles each count.
        """
        pending = self._pending_misses
        if not pending or cycle > pending[-1]:
            pending.append(cycle)
        elif cycle < pending[-1]:
            # Out-of-order notification within the same tick window:
            # peel the (few) younger entries off the tail, splice the
            # new cycle in unless it is already present, and push the
            # tail back.  O(k) in the number of younger entries instead
            # of the old O(n) membership scan plus full re-sort; the
            # resulting deque (sorted, duplicate-free) is identical.
            tail = []
            while pending and pending[-1] > cycle:
                tail.append(pending.pop())
            if not pending or pending[-1] != cycle:
                pending.append(cycle)
            while tail:
                pending.append(tail.pop())

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        """One controller cycle; returns the decision for the processor."""
        pending = self._pending_misses
        processed = 0
        last_miss = -1
        while pending and pending[0] <= cycle:
            last_miss = pending.popleft()
            processed += 1
        if processed:
            new_level = min(self.level + processed, self.max_level)
            self.shrink_timing = last_miss + self.shrink_latency
            self.do_shrink = False
            if new_level != self.level:
                self.enlarges += new_level - self.level
                self.level = new_level
                return ResizeDecision(new_level=new_level)
            return ResizeDecision()
        if self.shrink_timing >= 0 and cycle >= self.shrink_timing:
            self.do_shrink = True
            self.shrink_timing = -1
        if self.level > 1 and self.do_shrink:
            if window.can_shrink_to(self.level - 1):
                self.level -= 1
                self.shrinks += 1
                self.shrink_timing = cycle + self.shrink_latency
                self.do_shrink = False
                return ResizeDecision(new_level=self.level)
            return ResizeDecision(stop_alloc=True)
        return ResizeDecision()

    def next_timer(self) -> int | None:
        """Next cycle at which this policy needs to run even if the
        pipeline is otherwise idle (lets the simulator fast-forward)."""
        candidates = []
        if self._pending_misses:
            candidates.append(self._pending_misses[0])
        if self.shrink_timing >= 0:
            candidates.append(self.shrink_timing)
        return min(candidates) if candidates else None

    @property
    def wants_tick_every_cycle(self) -> bool:
        """While a shrink is pending we must retry the vacancy check."""
        return self.do_shrink and self.level > 1
