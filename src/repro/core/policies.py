"""Resizing policy interface and comparator policies.

Besides the paper's MLP-aware policy (:mod:`repro.core.resizing`), this
module implements simplified versions of the two prior-art resizing
policies the related-work section contrasts against, for the ablation
benches:

* :class:`OccupancyPolicy` — demand-driven resizing in the spirit of
  Ponomarev et al. (MICRO'01): shrink when average IQ occupancy is low,
  enlarge when dispatch stalls on a full IQ.  The paper's criticism: the
  IQ fills up even when no MLP is exploitable, so this policy enlarges
  (and pays the pipelined-IQ ILP penalty) without benefit.
* :class:`ContributionPolicy` — ILP-feedback resizing in the spirit of
  Folegnani & González (ISCA'01): periodically probe a larger window and
  keep it only if commit throughput improved.  The paper's criticism: no
  systematic enlargement trigger, so it reacts slowly to miss clusters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.pipeline.resources import WindowSet


class ResizeDecision:
    """What a policy asks the processor to do this cycle."""

    __slots__ = ("new_level", "stop_alloc")

    def __init__(self, new_level: int | None = None,
                 stop_alloc: bool = False) -> None:
        self.new_level = new_level
        self.stop_alloc = stop_alloc

    def __repr__(self) -> str:
        return f"<ResizeDecision level={self.new_level} stop={self.stop_alloc}>"


class ResizingPolicy(ABC):
    """Per-cycle window resizing decision maker."""

    level: int
    #: when set, the policy is frozen at this level for the whole run:
    #: the processor treats it exactly like a :class:`StaticPolicy`
    #: (tick, miss notification and timers are all skipped), so a pinned
    #: run is bit-identical to a static one — the differential oracle in
    #: :mod:`repro.verify` is built on this.
    pinned_level: int | None = None

    def pin(self, level: int) -> "ResizingPolicy":
        """Freeze this policy at ``level``; returns ``self`` so a pinned
        policy can be built in one expression.  Must be called before
        the policy is handed to a :class:`~repro.pipeline.Processor`."""
        if level < 1:
            raise ValueError(f"pin level must be >= 1, got {level}")
        self.pinned_level = level
        self.level = level
        return self

    @abstractmethod
    def on_l2_miss(self, cycle: int) -> None:
        """Observe a demand LLC miss detected at ``cycle``."""

    @abstractmethod
    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        """Run one controller cycle."""

    def next_timer(self) -> int | None:
        """Next cycle the policy must observe even if the core is idle."""
        return None

    @property
    def wants_tick_every_cycle(self) -> bool:
        return False


class StaticPolicy(ResizingPolicy):
    """Fixed level for the whole run (the FIXED and IDEAL models)."""

    def __init__(self, level: int) -> None:
        self.level = level

    def on_l2_miss(self, cycle: int) -> None:
        pass

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        return ResizeDecision()


class OccupancyPolicy(ResizingPolicy):
    """Demand-driven resizing (Ponomarev-style), period-sampled."""

    def __init__(self, max_level: int, period: int = 2048,
                 shrink_threshold: float = 0.55,
                 enlarge_stall_threshold: float = 0.05) -> None:
        self.max_level = max_level
        self.period = period
        self.shrink_threshold = shrink_threshold
        self.enlarge_stall_threshold = enlarge_stall_threshold
        self.level = 1
        self._next_check = period
        self._last_check_cycle = 0
        self._occ_sum = 0
        self._samples = 0
        self._last_full_events = 0
        self._want_shrink = False

    def on_l2_miss(self, cycle: int) -> None:
        pass   # occupancy-driven: blind to MLP, by design

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        self._occ_sum += window.iq.occupancy
        self._samples += 1
        if self._want_shrink:
            if window.can_shrink_to(self.level - 1):
                self.level -= 1
                self._want_shrink = False
                return ResizeDecision(new_level=self.level)
            return ResizeDecision(stop_alloc=True)
        if cycle < self._next_check:
            return ResizeDecision()
        # A check can be deferred past _next_check (the early _want_shrink
        # return during a stop_alloc drain), so the stall rate divides by
        # the cycles actually elapsed since the last evaluation — dividing
        # by the nominal period would under-report exactly when the
        # machine is already struggling to drain.
        elapsed = max(1, cycle - self._last_check_cycle)
        self._last_check_cycle = cycle
        self._next_check = cycle + self.period
        avg_occ = self._occ_sum / max(1, self._samples)
        # full_events is a pure recording counter (bumped once per
        # stalled-dispatch cycle via note_alloc_stall, never by query
        # methods), so this delta really is "cycles dispatch blocked on
        # the IQ this period" no matter how often anyone observed it
        full_events = window.iq.full_events - self._last_full_events
        self._last_full_events = window.iq.full_events
        self._occ_sum = 0
        self._samples = 0
        stall_rate = full_events / elapsed
        if (stall_rate > self.enlarge_stall_threshold
                and self.level < self.max_level):
            self.level += 1
            return ResizeDecision(new_level=self.level)
        if (self.level > 1
                and avg_occ < self.shrink_threshold
                * window.levels[self.level - 2].iq_entries):
            self._want_shrink = True
        return ResizeDecision()

    @property
    def wants_tick_every_cycle(self) -> bool:
        return True   # it samples occupancy continuously


class ContributionPolicy(ResizingPolicy):
    """ILP-feedback resizing (Folegnani-style), probe-and-keep.

    Commit throughput is read from :attr:`WindowSet.committed`, which the
    processor's commit stage keeps current.  Every ``period`` cycles the
    policy either *measures* (refreshing the reference rate) or *trials*
    a one-level move and keeps it only if the next period's rate
    justifies it: an enlargement must improve commit rate by
    ``keep_gain``; a shrink is kept unless the larger window was earning
    ``keep_gain``.  The downward trial models Folegnani & González's
    rule of shrinking when the youngest window region contributes
    nothing — without it the policy can only ratchet upward, so any
    transient (even pipeline warm-up) pins it at the maximum level for
    the rest of the run.

    Two properties keep the feedback honest:

    * the reference rate is *windowed* — always the most recent full
      measurement period, never a high-water mark, so a transient
      high-IPC phase cannot permanently inflate the keep threshold;
    * rates divide by the cycles actually elapsed since the previous
      evaluation, so a check deferred by a shrink drain cannot skew the
      measurement.

    A reverted trial backs off for ``cooldown`` checks and flips the
    next trial direction, so the policy settles at the smallest level
    whose window earns its keep instead of thrashing.
    """

    def __init__(self, max_level: int, period: int = 4096,
                 keep_gain: float = 1.03, cooldown: int = 3) -> None:
        self.max_level = max_level
        self.period = period
        self.keep_gain = keep_gain
        self.cooldown = cooldown
        self.level = 1
        self._next_check = period
        self._last_check_cycle = 0
        self._commits_at_check = 0
        self._last_rate = 0.0
        self._probe_dir = 0        # +1 trialing up, -1 trialing down, 0 idle
        self._prefer_down = False  # next trial direction (flipped on revert)
        self._cooldown_left = 0
        self._want_shrink = False

    def on_l2_miss(self, cycle: int) -> None:
        pass

    def _shrink_one(self, window: WindowSet) -> ResizeDecision:
        """Shrink one level now if vacant, else stall allocation."""
        if window.can_shrink_to(self.level - 1):
            self.level -= 1
            self._want_shrink = False
            return ResizeDecision(new_level=self.level)
        return ResizeDecision(stop_alloc=True)

    def _start_trial(self, window: WindowSet) -> ResizeDecision:
        """Begin a one-level trial in the preferred feasible direction."""
        up_ok = self.level < self.max_level
        down_ok = self.level > 1
        if down_ok and (self._prefer_down or not up_ok):
            self._probe_dir = -1
            self._want_shrink = True
            return self._shrink_one(window)
        if up_ok:
            self._probe_dir = +1
            self.level += 1
            return ResizeDecision(new_level=self.level)
        return ResizeDecision()

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        if self._want_shrink:
            return self._shrink_one(window)
        if cycle < self._next_check:
            return ResizeDecision()
        elapsed = max(1, cycle - self._last_check_cycle)
        rate = (window.committed - self._commits_at_check) / elapsed
        self._commits_at_check = window.committed
        self._last_check_cycle = cycle
        self._next_check = cycle + self.period
        direction = self._probe_dir
        self._probe_dir = 0
        if direction > 0:
            if rate < self._last_rate * self.keep_gain:
                # enlargement did not pay: revert and try down next
                self._want_shrink = True
                self._prefer_down = True
                self._cooldown_left = self.cooldown
            self._last_rate = rate         # windowed reference, no ratchet
            return ResizeDecision()
        if direction < 0:
            ref = self._last_rate
            self._last_rate = rate
            if rate * self.keep_gain >= ref:
                # the larger window was not earning its keep_gain:
                # stay small, keep trialing downward
                self._prefer_down = True
                return ResizeDecision()
            # shrink cost throughput: re-enlarge, try up next
            self.level += 1
            self._prefer_down = False
            self._cooldown_left = self.cooldown
            return ResizeDecision(new_level=self.level)
        self._last_rate = rate
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return ResizeDecision()
        return self._start_trial(window)

    @property
    def wants_tick_every_cycle(self) -> bool:
        return True


def make_policy(name: str, max_level: int, memory_latency: int) -> ResizingPolicy:
    """Policy factory for the ablation experiments and the verify
    oracles.  ``static`` pins level 1; ``static:N`` pins level ``N``
    (``N`` in 1..``max_level``)."""
    from repro.core.resizing import MLPAwarePolicy
    if name == "mlp":
        return MLPAwarePolicy(max_level, memory_latency)
    if name == "occupancy":
        return OccupancyPolicy(max_level)
    if name == "contribution":
        return ContributionPolicy(max_level)
    if name == "static" or name.startswith("static:"):
        __, ___, arg = name.partition(":")
        try:
            level = int(arg) if arg else 1
        except ValueError:
            raise ValueError(
                f"bad static level {arg!r} in policy name {name!r}") from None
        if not 1 <= level <= max_level:
            raise ValueError(
                f"static level {level} outside 1..{max_level}")
        return StaticPolicy(level)
    raise ValueError(f"unknown policy {name!r}; "
                     "known: mlp, occupancy, contribution, static[:N]")
