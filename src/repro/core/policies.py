"""Resizing policy interface and comparator policies.

Besides the paper's MLP-aware policy (:mod:`repro.core.resizing`), this
module implements simplified versions of the two prior-art resizing
policies the related-work section contrasts against, for the ablation
benches:

* :class:`OccupancyPolicy` — demand-driven resizing in the spirit of
  Ponomarev et al. (MICRO'01): shrink when average IQ occupancy is low,
  enlarge when dispatch stalls on a full IQ.  The paper's criticism: the
  IQ fills up even when no MLP is exploitable, so this policy enlarges
  (and pays the pipelined-IQ ILP penalty) without benefit.
* :class:`ContributionPolicy` — ILP-feedback resizing in the spirit of
  Folegnani & González (ISCA'01): periodically probe a larger window and
  keep it only if commit throughput improved.  The paper's criticism: no
  systematic enlargement trigger, so it reacts slowly to miss clusters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.pipeline.resources import WindowSet


class ResizeDecision:
    """What a policy asks the processor to do this cycle."""

    __slots__ = ("new_level", "stop_alloc")

    def __init__(self, new_level: int | None = None,
                 stop_alloc: bool = False) -> None:
        self.new_level = new_level
        self.stop_alloc = stop_alloc

    def __repr__(self) -> str:
        return f"<ResizeDecision level={self.new_level} stop={self.stop_alloc}>"


class ResizingPolicy(ABC):
    """Per-cycle window resizing decision maker."""

    level: int
    #: when set, the policy is frozen at this level for the whole run:
    #: the processor treats it exactly like a :class:`StaticPolicy`
    #: (tick, miss notification and timers are all skipped), so a pinned
    #: run is bit-identical to a static one — the differential oracle in
    #: :mod:`repro.verify` is built on this.
    pinned_level: int | None = None

    def pin(self, level: int) -> "ResizingPolicy":
        """Freeze this policy at ``level``; returns ``self`` so a pinned
        policy can be built in one expression.  Must be called before
        the policy is handed to a :class:`~repro.pipeline.Processor`."""
        if level < 1:
            raise ValueError(f"pin level must be >= 1, got {level}")
        self.pinned_level = level
        self.level = level
        return self

    @abstractmethod
    def on_l2_miss(self, cycle: int) -> None:
        """Observe a demand LLC miss detected at ``cycle``."""

    @abstractmethod
    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        """Run one controller cycle."""

    def next_timer(self) -> int | None:
        """Next cycle the policy must observe even if the core is idle."""
        return None

    @property
    def wants_tick_every_cycle(self) -> bool:
        return False


class StaticPolicy(ResizingPolicy):
    """Fixed level for the whole run (the FIXED and IDEAL models)."""

    def __init__(self, level: int) -> None:
        self.level = level

    def on_l2_miss(self, cycle: int) -> None:
        pass

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        return ResizeDecision()


class OccupancyPolicy(ResizingPolicy):
    """Demand-driven resizing (Ponomarev-style), period-sampled."""

    def __init__(self, max_level: int, period: int = 2048,
                 shrink_threshold: float = 0.55,
                 enlarge_stall_threshold: float = 0.05) -> None:
        self.max_level = max_level
        self.period = period
        self.shrink_threshold = shrink_threshold
        self.enlarge_stall_threshold = enlarge_stall_threshold
        self.level = 1
        self._next_check = period
        self._last_check_cycle = 0
        self._occ_sum = 0
        self._samples = 0
        self._last_full_events = 0
        self._want_shrink = False

    def on_l2_miss(self, cycle: int) -> None:
        pass   # occupancy-driven: blind to MLP, by design

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        self._occ_sum += window.iq.occupancy
        self._samples += 1
        if self._want_shrink:
            if window.can_shrink_to(self.level - 1):
                self.level -= 1
                self._want_shrink = False
                return ResizeDecision(new_level=self.level)
            return ResizeDecision(stop_alloc=True)
        if cycle < self._next_check:
            return ResizeDecision()
        # A check can be deferred past _next_check (the early _want_shrink
        # return during a stop_alloc drain), so the stall rate divides by
        # the cycles actually elapsed since the last evaluation — dividing
        # by the nominal period would under-report exactly when the
        # machine is already struggling to drain.
        elapsed = max(1, cycle - self._last_check_cycle)
        self._last_check_cycle = cycle
        self._next_check = cycle + self.period
        avg_occ = self._occ_sum / max(1, self._samples)
        # full_events is a pure recording counter (bumped once per
        # stalled-dispatch cycle via note_alloc_stall, never by query
        # methods), so this delta really is "cycles dispatch blocked on
        # the IQ this period" no matter how often anyone observed it
        full_events = window.iq.full_events - self._last_full_events
        self._last_full_events = window.iq.full_events
        self._occ_sum = 0
        self._samples = 0
        stall_rate = full_events / elapsed
        if (stall_rate > self.enlarge_stall_threshold
                and self.level < self.max_level):
            self.level += 1
            return ResizeDecision(new_level=self.level)
        if (self.level > 1
                and avg_occ < self.shrink_threshold
                * window.levels[self.level - 2].iq_entries):
            self._want_shrink = True
        return ResizeDecision()

    @property
    def wants_tick_every_cycle(self) -> bool:
        return True   # it samples occupancy continuously


class ContributionPolicy(ResizingPolicy):
    """ILP-feedback resizing (Folegnani-style), probe-and-keep.

    Commit throughput is read from :attr:`WindowSet.committed`, which the
    processor's commit stage keeps current.  Every ``period`` cycles the
    policy either *measures* (refreshing the reference rate) or *trials*
    a one-level move and keeps it only if the next period's rate
    justifies it: an enlargement must improve commit rate by
    ``keep_gain``; a shrink is kept unless the larger window was earning
    ``keep_gain``.  The downward trial models Folegnani & González's
    rule of shrinking when the youngest window region contributes
    nothing — without it the policy can only ratchet upward, so any
    transient (even pipeline warm-up) pins it at the maximum level for
    the rest of the run.

    Two properties keep the feedback honest:

    * the reference rate is *windowed* — always the most recent full
      measurement period, never a high-water mark, so a transient
      high-IPC phase cannot permanently inflate the keep threshold;
    * rates divide by the cycles actually elapsed since the previous
      evaluation, so a check deferred by a shrink drain cannot skew the
      measurement.

    A reverted trial backs off for ``cooldown`` checks and flips the
    next trial direction, so the policy settles at the smallest level
    whose window earns its keep instead of thrashing.
    """

    def __init__(self, max_level: int, period: int = 4096,
                 keep_gain: float = 1.03, cooldown: int = 3) -> None:
        self.max_level = max_level
        self.period = period
        self.keep_gain = keep_gain
        self.cooldown = cooldown
        self.level = 1
        self._next_check = period
        self._last_check_cycle = 0
        self._commits_at_check = 0
        self._last_rate = 0.0
        self._probe_dir = 0        # +1 trialing up, -1 trialing down, 0 idle
        self._prefer_down = False  # next trial direction (flipped on revert)
        self._cooldown_left = 0
        self._want_shrink = False

    def on_l2_miss(self, cycle: int) -> None:
        pass

    def _shrink_one(self, window: WindowSet) -> ResizeDecision:
        """Shrink one level now if vacant, else stall allocation."""
        if window.can_shrink_to(self.level - 1):
            self.level -= 1
            self._want_shrink = False
            return ResizeDecision(new_level=self.level)
        return ResizeDecision(stop_alloc=True)

    def _start_trial(self, window: WindowSet) -> ResizeDecision:
        """Begin a one-level trial in the preferred feasible direction."""
        up_ok = self.level < self.max_level
        down_ok = self.level > 1
        if down_ok and (self._prefer_down or not up_ok):
            self._probe_dir = -1
            self._want_shrink = True
            return self._shrink_one(window)
        if up_ok:
            self._probe_dir = +1
            self.level += 1
            return ResizeDecision(new_level=self.level)
        return ResizeDecision()

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        if self._want_shrink:
            return self._shrink_one(window)
        if cycle < self._next_check:
            return ResizeDecision()
        elapsed = max(1, cycle - self._last_check_cycle)
        rate = (window.committed - self._commits_at_check) / elapsed
        self._commits_at_check = window.committed
        self._last_check_cycle = cycle
        self._next_check = cycle + self.period
        direction = self._probe_dir
        self._probe_dir = 0
        if direction > 0:
            if rate < self._last_rate * self.keep_gain:
                # enlargement did not pay: revert and try down next
                self._want_shrink = True
                self._prefer_down = True
                self._cooldown_left = self.cooldown
            self._last_rate = rate         # windowed reference, no ratchet
            return ResizeDecision()
        if direction < 0:
            ref = self._last_rate
            self._last_rate = rate
            if rate * self.keep_gain >= ref:
                # the larger window was not earning its keep_gain:
                # stay small, keep trialing downward
                self._prefer_down = True
                return ResizeDecision()
            # shrink cost throughput: re-enlarge, try up next
            self.level += 1
            self._prefer_down = False
            self._cooldown_left = self.cooldown
            return ResizeDecision(new_level=self.level)
        self._last_rate = rate
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return ResizeDecision()
        return self._start_trial(window)

    @property
    def wants_tick_every_cycle(self) -> bool:
        return True


def _make_static(arg: str, max_level: int, memory_latency: int):
    try:
        level = int(arg) if arg else 1
    except ValueError:
        raise ValueError(f"bad static level {arg!r}") from None
    if not 1 <= level <= max_level:
        raise ValueError(f"static level {level} outside 1..{max_level}")
    return StaticPolicy(level)


def _make_mlp(arg: str, max_level: int, memory_latency: int):
    from repro.core.resizing import MLPAwarePolicy
    return MLPAwarePolicy(max_level, memory_latency)


def _make_occupancy(arg: str, max_level: int, memory_latency: int):
    return OccupancyPolicy(max_level)


def _make_contribution(arg: str, max_level: int, memory_latency: int):
    return ContributionPolicy(max_level)


def _make_bandit(arg: str, max_level: int, memory_latency: int):
    from repro.core.learned import BANDIT_KINDS, BanditWindowPolicy
    kind, __, seed_arg = arg.partition(":")
    if kind not in BANDIT_KINDS:
        raise ValueError(f"unknown bandit kind {kind!r}; "
                         f"known: {', '.join(BANDIT_KINDS)}")
    try:
        seed = int(seed_arg) if seed_arg else 1
    except ValueError:
        raise ValueError(f"bad bandit seed {seed_arg!r}") from None
    return BanditWindowPolicy(max_level, kind=kind, seed=seed)


def _make_table(arg: str, max_level: int, memory_latency: int):
    from repro.core.learned import TablePolicy
    if not arg:
        raise ValueError("table policy needs an artifact path: table:<path>")
    return TablePolicy.from_file(arg, max_level)


class PolicyInfo:
    """One registry row: canonical spec syntax, summary, factory.

    The single source of truth for what policies exist — the
    :func:`make_policy` dispatch and its unknown-name error, the policy
    handbook (``docs/policies.md``) and the service's accepted specs
    all derive from this table, so they cannot drift apart
    (``tests/test_policies.py`` asserts the docs list every spec).
    """

    __slots__ = ("prefix", "spec", "summary", "oracles", "factory")

    def __init__(self, prefix: str, spec: str, summary: str,
                 oracles: str, factory) -> None:
        self.prefix = prefix
        self.spec = spec
        self.summary = summary
        self.oracles = oracles
        self.factory = factory


POLICY_REGISTRY: tuple[PolicyInfo, ...] = (
    PolicyInfo(
        "static", "static[:N]",
        "fixed window level N (default 1) for the whole run — the "
        "paper's FIXED and IDEAL models",
        "golden digests, fast-forward/engine equivalence; the reference "
        "side of pin-equivalence",
        _make_static),
    PolicyInfo(
        "mlp", "mlp",
        "the paper's DYN controller: enlarge one level per demand L2 "
        "miss, shrink when a one-memory-latency timer expires",
        "pin-equivalence, degenerate-memory (stays at level 1), "
        "ff/engine equivalence, golden digests, fuzz",
        _make_mlp),
    PolicyInfo(
        "occupancy", "occupancy",
        "demand-driven comparator (Ponomarev-style): shrink on low IQ "
        "occupancy, enlarge on dispatch stalls",
        "pin-equivalence, degenerate-memory (no-miss premise), fuzz",
        _make_occupancy),
    PolicyInfo(
        "contribution", "contribution",
        "ILP-feedback comparator (Folegnani-style): probe a level move "
        "every period, keep it only if commit rate justifies it",
        "pin-equivalence, degenerate-memory (no-miss premise), fuzz",
        _make_contribution),
    PolicyInfo(
        "bandit", "bandit:ucb[:seed] | bandit:egreedy[:seed]",
        "online bandit over window levels, reward = windowed commit "
        "rate net of measured transition/drain cost; seeded "
        "deterministic exploration",
        "pin-equivalence, degenerate-memory (stays at level 1), "
        "seeded-replay bit-identity, fuzz",
        _make_bandit),
    PolicyInfo(
        "table", "table:<path>",
        "zero-exploration decision table (miss bucket -> level) "
        "distilled from telemetry by tools/train_policy_table.py",
        "pin-equivalence and degenerate-memory via its bucket-0 level; "
        "library/batch only (the service rejects file-path specs)",
        _make_table),
)

_REGISTRY_BY_PREFIX = {info.prefix: info for info in POLICY_REGISTRY}


def policy_specs() -> tuple[str, ...]:
    """Canonical spec string of every registered policy family."""
    return tuple(info.spec for info in POLICY_REGISTRY)


def make_policy(name: str, max_level: int, memory_latency: int) -> ResizingPolicy:
    """Policy factory for the experiments, the service job path and the
    verify oracles.  ``name`` is a spec from :data:`POLICY_REGISTRY`:
    the family prefix plus optional ``:``-separated arguments (e.g.
    ``static:2``, ``bandit:ucb:7``, ``table:results/table.json``)."""
    prefix, __, arg = name.partition(":")
    info = _REGISTRY_BY_PREFIX.get(prefix)
    if info is None:
        raise ValueError(f"unknown policy {name!r}; known specs: "
                         + ", ".join(policy_specs()))
    try:
        return info.factory(arg, max_level, memory_latency)
    except ValueError as exc:
        raise ValueError(f"bad policy spec {name!r}: {exc}") from None
