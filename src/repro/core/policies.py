"""Resizing policy interface and comparator policies.

Besides the paper's MLP-aware policy (:mod:`repro.core.resizing`), this
module implements simplified versions of the two prior-art resizing
policies the related-work section contrasts against, for the ablation
benches:

* :class:`OccupancyPolicy` — demand-driven resizing in the spirit of
  Ponomarev et al. (MICRO'01): shrink when average IQ occupancy is low,
  enlarge when dispatch stalls on a full IQ.  The paper's criticism: the
  IQ fills up even when no MLP is exploitable, so this policy enlarges
  (and pays the pipelined-IQ ILP penalty) without benefit.
* :class:`ContributionPolicy` — ILP-feedback resizing in the spirit of
  Folegnani & González (ISCA'01): periodically probe a larger window and
  keep it only if commit throughput improved.  The paper's criticism: no
  systematic enlargement trigger, so it reacts slowly to miss clusters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.pipeline.resources import WindowSet


class ResizeDecision:
    """What a policy asks the processor to do this cycle."""

    __slots__ = ("new_level", "stop_alloc")

    def __init__(self, new_level: int | None = None,
                 stop_alloc: bool = False) -> None:
        self.new_level = new_level
        self.stop_alloc = stop_alloc

    def __repr__(self) -> str:
        return f"<ResizeDecision level={self.new_level} stop={self.stop_alloc}>"


class ResizingPolicy(ABC):
    """Per-cycle window resizing decision maker."""

    level: int

    @abstractmethod
    def on_l2_miss(self, cycle: int) -> None:
        """Observe a demand LLC miss detected at ``cycle``."""

    @abstractmethod
    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        """Run one controller cycle."""

    def next_timer(self) -> int | None:
        """Next cycle the policy must observe even if the core is idle."""
        return None

    @property
    def wants_tick_every_cycle(self) -> bool:
        return False


class StaticPolicy(ResizingPolicy):
    """Fixed level for the whole run (the FIXED and IDEAL models)."""

    def __init__(self, level: int) -> None:
        self.level = level

    def on_l2_miss(self, cycle: int) -> None:
        pass

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        return ResizeDecision()


class OccupancyPolicy(ResizingPolicy):
    """Demand-driven resizing (Ponomarev-style), period-sampled."""

    def __init__(self, max_level: int, period: int = 2048,
                 shrink_threshold: float = 0.55,
                 enlarge_stall_threshold: float = 0.05) -> None:
        self.max_level = max_level
        self.period = period
        self.shrink_threshold = shrink_threshold
        self.enlarge_stall_threshold = enlarge_stall_threshold
        self.level = 1
        self._next_check = period
        self._occ_sum = 0
        self._samples = 0
        self._last_full_events = 0
        self._want_shrink = False

    def on_l2_miss(self, cycle: int) -> None:
        pass   # occupancy-driven: blind to MLP, by design

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        self._occ_sum += window.iq.occupancy
        self._samples += 1
        if self._want_shrink:
            if window.can_shrink_to(self.level - 1):
                self.level -= 1
                self._want_shrink = False
                return ResizeDecision(new_level=self.level)
            return ResizeDecision(stop_alloc=True)
        if cycle < self._next_check:
            return ResizeDecision()
        self._next_check = cycle + self.period
        avg_occ = self._occ_sum / max(1, self._samples)
        # full_events is a pure recording counter (bumped once per
        # stalled-dispatch cycle via note_alloc_stall, never by query
        # methods), so this delta really is "cycles dispatch blocked on
        # the IQ this period" no matter how often anyone observed it
        full_events = window.iq.full_events - self._last_full_events
        self._last_full_events = window.iq.full_events
        self._occ_sum = 0
        self._samples = 0
        stall_rate = full_events / self.period
        if (stall_rate > self.enlarge_stall_threshold
                and self.level < self.max_level):
            self.level += 1
            return ResizeDecision(new_level=self.level)
        if (self.level > 1
                and avg_occ < self.shrink_threshold
                * window.levels[self.level - 2].iq_entries):
            self._want_shrink = True
        return ResizeDecision()

    @property
    def wants_tick_every_cycle(self) -> bool:
        return True   # it samples occupancy continuously


class ContributionPolicy(ResizingPolicy):
    """ILP-feedback resizing (Folegnani-style), probe-and-keep."""

    def __init__(self, max_level: int, period: int = 4096,
                 keep_gain: float = 1.03) -> None:
        self.max_level = max_level
        self.period = period
        self.keep_gain = keep_gain
        self.level = 1
        self._next_check = period
        self._commits_at_check = 0
        self._last_rate = 0.0
        self._probing = False
        self._want_shrink = False
        self.committed = 0   # updated by the processor each commit

    def on_l2_miss(self, cycle: int) -> None:
        pass

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        if self._want_shrink:
            if window.can_shrink_to(self.level - 1):
                self.level -= 1
                self._want_shrink = False
                return ResizeDecision(new_level=self.level)
            return ResizeDecision(stop_alloc=True)
        if cycle < self._next_check:
            return ResizeDecision()
        rate = (self.committed - self._commits_at_check) / self.period
        self._commits_at_check = self.committed
        self._next_check = cycle + self.period
        if self._probing:
            self._probing = False
            if rate < self._last_rate * self.keep_gain and self.level > 1:
                self._want_shrink = True   # probe did not pay off
            self._last_rate = max(rate, self._last_rate)
            return ResizeDecision()
        self._last_rate = rate
        if self.level < self.max_level:
            self._probing = True
            self.level += 1
            return ResizeDecision(new_level=self.level)
        return ResizeDecision()

    @property
    def wants_tick_every_cycle(self) -> bool:
        return True


def make_policy(name: str, max_level: int, memory_latency: int) -> ResizingPolicy:
    """Policy factory for the ablation experiments."""
    from repro.core.resizing import MLPAwarePolicy
    if name == "mlp":
        return MLPAwarePolicy(max_level, memory_latency)
    if name == "occupancy":
        return OccupancyPolicy(max_level)
    if name == "contribution":
        return ContributionPolicy(max_level)
    if name == "static":
        return StaticPolicy(1)
    raise ValueError(f"unknown policy {name!r}; "
                     "known: mlp, occupancy, contribution, static")
