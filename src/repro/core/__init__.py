"""The paper's contribution: MLP-aware dynamic instruction window resizing.

:class:`~repro.core.resizing.MLPAwarePolicy` is a direct transcription of
the algorithm in Figure 5 of the paper: enlarge the window resources one
level on every L2 (LLC) miss, arm a shrink timer of one main-memory
latency, and shrink one level when the timer expires — postponing the
shrink (and stalling front-end allocation) until the FIFO regions to be
removed are vacant.

:mod:`~repro.core.policies` additionally provides the comparator policies
discussed in the related-work section (occupancy-driven and
ILP-contribution-driven resizing) for ablation experiments.
"""

from repro.core.resizing import MLPAwarePolicy, ResizeDecision
from repro.core.policies import (
    POLICY_REGISTRY,
    PolicyInfo,
    ResizingPolicy,
    StaticPolicy,
    OccupancyPolicy,
    ContributionPolicy,
    make_policy,
    policy_specs,
)
from repro.core.learned import (
    BANDIT_KINDS,
    BanditWindowPolicy,
    TablePolicy,
    seeded_unit,
)
from repro.core.partition import (
    PARTITION_NAMES,
    PartitionPolicy,
    MLPPartitionPolicy,
    EqualPartitionPolicy,
    SharedPartitionPolicy,
    make_partition_policy,
)

__all__ = [
    "MLPAwarePolicy",
    "ResizeDecision",
    "ResizingPolicy",
    "StaticPolicy",
    "OccupancyPolicy",
    "ContributionPolicy",
    "BANDIT_KINDS",
    "BanditWindowPolicy",
    "TablePolicy",
    "seeded_unit",
    "POLICY_REGISTRY",
    "PolicyInfo",
    "make_policy",
    "policy_specs",
    "PARTITION_NAMES",
    "PartitionPolicy",
    "MLPPartitionPolicy",
    "EqualPartitionPolicy",
    "SharedPartitionPolicy",
    "make_partition_policy",
]
