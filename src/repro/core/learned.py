"""Learned window-level selection: seeded bandits and distilled tables.

The paper's DYN controller is a hand-tuned threshold policy; the
comparators in :mod:`repro.core.policies` are hand-tuned feedback
policies.  This module closes ROADMAP item "learned policy selection"
with two controllers that *select among window levels* instead of
encoding a fixed rule:

* :class:`BanditWindowPolicy` — an online multi-armed bandit
  (``bandit:ucb`` / ``bandit:egreedy``) that treats each window level as
  an arm.  Every ``period`` cycles it scores the arm it just played with
  the windowed commit rate **net of the measured transition/drain cost**
  it charged to switch there, updates that arm's value estimate, and
  picks the next arm by UCB or epsilon-greedy.
* :class:`TablePolicy` — a zero-exploration decision table (miss-count
  bucket → level) distilled offline from campaign telemetry by
  ``tools/train_policy_table.py`` and shipped as a ``table:`` artifact.

Determinism contract
    Exploration is *seeded and counter-indexed*: every random draw is a
    pure function of ``(seed, draw_index)`` through a splitmix64-style
    mixer — no ``random.Random`` state, no dependence on host, process,
    engine or import order.  The seed is a plain constructor attribute,
    so :func:`repro.experiments.cache.policy_fingerprint` folds it into
    every ``result_key``: the same seed replays bit-identically (and
    cache-hits), a different seed keys a different run.  ``.pin(N)``
    degrades the bandit to the inert static fast path exactly like every
    other policy, so the pin-equivalence oracle passes unchanged.

Degenerate-memory contract
    Arms above level 1 are only eligible while a demand L2 miss
    (``on_l2_miss``) is *recent* — within ``miss_horizon`` cycles.  On
    a trace with no L2 misses the bandit provably never leaves level 1
    — the same exact guarantee the verify suite asserts for the
    MLP-aware and static policies — and on quiet stretches of a mixed
    trace it falls back to level 1 instead of spending the stretch
    exploring arms that cannot pay there.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_right

from repro.config import LEVEL_TRANSITION_PENALTY
from repro.core.policies import ResizeDecision, ResizingPolicy
from repro.pipeline.resources import WindowSet

#: The bandit kinds ``make_policy`` accepts as ``bandit:<kind>``.
BANDIT_KINDS = ("ucb", "egreedy")

_M64 = (1 << 64) - 1


def seeded_unit(seed: int, index: int, salt: int = 0) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for ``(seed, index)``.

    A splitmix64-style finalizer over the mixed inputs: stable across
    processes, platforms and engines, and stateless — the bandit's
    exploration sequence is a pure function of its seed and how many
    draws it has made, which is what makes seeded replay exact.
    """
    x = (seed * 0x9E3779B97F4A7C15
         + index * 0xBF58476D1CE4E5B9
         + salt * 0x94D049BB133111EB + 0x2545F4914F6CDD1D) & _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x / float(1 << 64)


class BanditWindowPolicy(ResizingPolicy):
    """Window levels as bandit arms, rewarded by net commit rate.

    Control law (every ``period`` cycles, deferred-elapsed like the
    other feedback comparators so a drain cannot skew a measurement):

    1. *score* the arm played over the window just ended:
       ``reward = commits/elapsed - rate_ref * cost/elapsed`` where
       ``cost`` is the cycles this window spent paying for the
       controller's own switching — the fixed transition penalty per
       applied level change plus every stop-alloc drain cycle — and
       ``rate_ref`` (a running mean of observed commit rates) converts
       lost cycles into lost commits.  Thrashing between arms is
       therefore charged to the arms that demanded the switches;
    2. *update* that arm's value with a capped-count incremental mean
       (step ``1/min(n, mean_cap)``): early plays average hard —
       per-window rewards are very noisy under clustered misses, and a
       run-mean is what separates arm means that sit close together —
       while the cap keeps a floor under the step so a context whose
       behaviour drifts is still tracked;
    3. *select* the next arm: ``ucb`` plays the arm maximising
       ``value + ucb_c * rate_ref * sqrt(ln(total)/plays)``;
       ``egreedy`` explores a seeded-uniform arm with probability
       ``explore`` and exploits the best value otherwise.  Untried
       eligible arms are played first (lowest level first).

    The bandit is *contextual* over the one signal the paper's own
    control law keys on: whether the window just ended observed a
    demand L2 miss.  Arm values and play counts are kept per context
    (miss / quiet), and selection assumes the next window's context
    matches the last one (phases persist for many windows).  That is
    what lets one controller learn *different* answers to the same
    trigger — "misses here have MLP, enlarge" on one program and
    "misses here are a write stream no window can hide, stay small" on
    another — where DYN hard-codes a single answer.

    Two measurement guards keep the per-arm estimates honest: a window
    containing an arm transition is a *settling* window (played,
    never scored — its commit rate measures the switch, not the arm),
    and the first ``burnin_windows`` scored windows seed only the
    reference rate (simulation start is cold no matter what the
    prewarmer did).

    Arms above level 1 are eligible only while demand L2 misses are
    *recent and dense*: at least ``miss_quorum`` of them within the
    last ``miss_horizon`` cycles.  This is the paper's own observation
    — enlargement can only pay while misses are outstanding — used to
    keep the bandit from burning forced exploration where level 1
    dominates by construction: the compute-intensive Table-3 programs
    miss the L2 a handful of times per run (isolated cold misses, two
    orders of magnitude below the memory-intensive programs), and a
    single stale miss must not buy two settle-and-score trial windows
    per arm and context.  A run that never misses the L2 therefore
    stays at level 1 exactly.
    """

    #: optional per-decision observer, installed at runtime by
    #: :class:`repro.telemetry.TelemetryProbe` (never pickled, never
    #: part of the policy fingerprint — it stays a class attribute
    #: until a probe assigns an instance attribute).  Called as
    #: ``listener(cycle, kind, level, detail)`` with kind ``"pull"``
    #: or ``"reward"``; the callee must only record, never mutate.
    listener = None

    def __init__(self, max_level: int, kind: str = "ucb",
                 period: int = 1_024, seed: int = 1,
                 explore: float = 0.12, ucb_c: float = 0.10,
                 mean_cap: int = 32, memory_decay: float = 0.95,
                 burnin_windows: int = 4, miss_horizon: int = 1_024,
                 miss_quorum: int = 2,
                 transition_penalty: int = LEVEL_TRANSITION_PENALTY) -> None:
        if kind not in BANDIT_KINDS:
            raise ValueError(f"unknown bandit kind {kind!r}; "
                             f"known: {', '.join(BANDIT_KINDS)}")
        if max_level < 1:
            raise ValueError(f"max_level must be >= 1, got {max_level}")
        self.max_level = max_level
        self.kind = kind
        self.period = period
        self.seed = seed
        self.explore = explore
        self.ucb_c = ucb_c
        self.mean_cap = mean_cap
        self.memory_decay = memory_decay
        self.burnin_windows = burnin_windows
        self.miss_horizon = miss_horizon
        self.miss_quorum = max(1, miss_quorum)
        self.transition_penalty = transition_penalty
        self.level = 1
        self._arm = 1                 # arm currently being played
        self._target = 1              # level a pending shrink drains toward
        self._want_shrink = False
        self._miss_ring = []          # cycles of the last miss_quorum misses
        self._next_check = period
        self._last_check_cycle = 0
        self._commits_at_check = 0
        self._cost_cycles = 0         # switch cost charged to this window
        self._draws = 0               # exploration draw counter
        #: discounted play counts (sliding-window UCB): every scoring
        #: step multiplies all counts by ``memory_decay`` before adding
        #: the new play, so an arm unvisited for ~1/(1-decay) windows
        #: regains its exploration bonus — on phase-structured traces a
        #: stale estimate (e.g. an arm scored once on cold caches) gets
        #: re-tried instead of poisoning the run
        self._plays = [[0.0] * max_level, [0.0] * max_level]
        self._tried = [[False] * max_level, [False] * max_level]
        self._values = [[0.0] * max_level, [0.0] * max_level]
        self._counts = [[0] * max_level, [0] * max_level]
        self._rate_ref = 0.0          # running mean commit rate
        self._ctx_miss = False        # window in progress saw an L2 miss
        self._ctx = 0                 # context of the last finished window
        #: the window now underway is a *settling* window — it contains
        #: an arm transition (or simulation start), so its commit rate
        #: measures the switch, not the arm.  Settling windows are
        #: played but never scored; the window after one is clean.
        self._settling = True
        self._scored = 0              # windows actually scored

    # ------------------------------------------------------------------

    def on_l2_miss(self, cycle: int) -> None:
        ring = self._miss_ring
        if len(ring) == self.miss_quorum:
            ring.pop(0)
        ring.append(cycle)
        self._ctx_miss = True

    def _emit(self, cycle: int, kind: str, level: int, detail: str) -> None:
        listener = self.listener
        if listener is not None:
            listener(cycle, kind, level, detail)

    def _shrink_toward(self, window: WindowSet) -> ResizeDecision:
        """Continue a pending shrink: complete it once the regions to
        vacate are empty, stall allocation (a charged drain cycle)
        until then."""
        if window.can_shrink_to(self._target):
            self.level = self._target
            self._want_shrink = False
            self._cost_cycles += self.transition_penalty
            return ResizeDecision(new_level=self.level)
        self._cost_cycles += 1
        return ResizeDecision(stop_alloc=True)

    def _eligible_arms(self, cycle: int) -> range:
        ring = self._miss_ring
        dense = (len(ring) == self.miss_quorum
                 and cycle - ring[0] <= self.miss_horizon)
        return range(1, self.max_level + 1) if dense else range(1, 2)

    def _select(self, ctx: int, cycle: int) -> int:
        arms = list(self._eligible_arms(cycle))
        tried = self._tried[ctx]
        for arm in arms:                        # untried arms first
            if not tried[arm - 1]:
                return arm
        values = self._values[ctx]
        plays = self._plays[ctx]
        if self.kind == "ucb":
            total = max(sum(plays[a - 1] for a in arms), math.e)
            bonus = self.ucb_c * max(self._rate_ref, 1e-9)
            return max(arms, key=lambda a: (
                values[a - 1]
                + bonus * math.sqrt(math.log(total)
                                    / max(plays[a - 1], 1e-9)),
                -a))
        self._draws += 1
        if seeded_unit(self.seed, self._draws) < self.explore:
            self._draws += 1
            pick = int(seeded_unit(self.seed, self._draws, salt=1)
                       * len(arms))
            return arms[min(pick, len(arms) - 1)]
        return max(arms, key=lambda a: (values[a - 1], -a))

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        if self._want_shrink:
            return self._shrink_toward(window)
        if cycle < self._next_check:
            return ResizeDecision()
        elapsed = max(1, cycle - self._last_check_cycle)
        commits = window.committed - self._commits_at_check
        self._commits_at_check = window.committed
        self._last_check_cycle = cycle
        self._next_check = cycle + self.period
        rate = commits / elapsed
        cost = min(self._cost_cycles, elapsed)
        self._cost_cycles = 0
        reward = rate - self._rate_ref * (cost / elapsed)
        ctx = 1 if self._ctx_miss else 0
        self._ctx_miss = False
        self._ctx = ctx
        if self._settling:
            # The window just ended contained an arm transition (or
            # simulation start): its commit rate measures the switch,
            # not the arm.  Keep playing the same arm; the next window
            # is clean and will be scored.
            self._settling = False
            return ResizeDecision()
        self._scored += 1
        self._rate_ref += (rate - self._rate_ref) / self._scored
        if self._scored <= self.burnin_windows:
            # Simulation start is cold no matter what prewarming did:
            # the earliest windows measure fill effects, not arms.  Use
            # them to seed the reference rate only — every arm is still
            # untried when real scoring begins.
            return ResizeDecision()
        decay = self.memory_decay
        plays = self._plays[ctx]
        for i in range(self.max_level):
            plays[i] *= decay
        arm = self._arm
        idx = arm - 1
        values = self._values[ctx]
        counts = self._counts[ctx]
        counts[idx] = min(counts[idx] + 1, self.mean_cap)
        if not self._tried[ctx][idx]:
            values[idx] = reward
            self._tried[ctx][idx] = True
        else:
            values[idx] += (reward - values[idx]) / counts[idx]
        plays[idx] += 1.0
        self._emit(cycle, "reward", arm,
                   f"arm={arm} ctx={ctx} reward={reward:.4f} "
                   f"plays={plays[idx]:.2f}")
        nxt = self._select(ctx, cycle)
        self._arm = nxt
        self._emit(cycle, "pull", nxt,
                   f"arm={nxt} ctx={ctx} kind={self.kind}")
        if nxt > self.level:
            self._settling = True
            self.level = nxt
            self._cost_cycles += self.transition_penalty
            return ResizeDecision(new_level=nxt)
        if nxt < self.level:
            self._settling = True
            self._target = nxt
            self._want_shrink = True
            return self._shrink_toward(window)
        return ResizeDecision()

    @property
    def wants_tick_every_cycle(self) -> bool:
        return True


class TablePolicy(ResizingPolicy):
    """Distilled zero-exploration controller: miss bucket → level.

    Every ``period`` cycles the demand L2 misses observed in the window
    are bucketed against ``thresholds`` (upper bounds, ascending) and
    the window moves toward ``levels[bucket]``.  The table *contents*
    are constructor state — not the artifact path — so the policy
    fingerprint (and every ``result_key``) covers what the policy does,
    not where its file happened to live.

    Built by ``tools/train_policy_table.py`` from campaign telemetry;
    loadable from its JSON artifact via :meth:`from_file` or the
    ``table:<path>`` spec of :func:`repro.core.make_policy`.
    """

    def __init__(self, max_level: int, thresholds, levels,
                 period: int = 2_048) -> None:
        thresholds = tuple(int(t) for t in thresholds)
        levels = tuple(int(lv) for lv in levels)
        if len(levels) != len(thresholds) + 1:
            raise ValueError(
                f"table needs len(levels) == len(thresholds) + 1, got "
                f"{len(levels)} levels for {len(thresholds)} thresholds")
        if list(thresholds) != sorted(thresholds):
            raise ValueError(f"thresholds must ascend, got {thresholds}")
        if not all(1 <= lv <= max_level for lv in levels):
            raise ValueError(
                f"table levels {levels} outside 1..{max_level}")
        self.max_level = max_level
        self.thresholds = thresholds
        self.levels = levels
        self.period = period
        self.level = 1
        self._misses = 0
        self._target = 1
        self._want_shrink = False
        self._next_check = period
        self._last_check_cycle = 0

    @classmethod
    def from_file(cls, path: str, max_level: int) -> "TablePolicy":
        """Load a ``tools/train_policy_table.py`` JSON artifact."""
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        try:
            return cls(max_level, thresholds=data["thresholds"],
                       levels=data["levels"],
                       period=int(data.get("period", 2_048)))
        except KeyError as exc:
            raise ValueError(
                f"{path}: table artifact missing key {exc}") from None

    def on_l2_miss(self, cycle: int) -> None:
        self._misses += 1

    def tick(self, cycle: int, window: WindowSet) -> ResizeDecision:
        if self._want_shrink:
            if window.can_shrink_to(self._target):
                self.level = self._target
                self._want_shrink = False
                return ResizeDecision(new_level=self.level)
            return ResizeDecision(stop_alloc=True)
        if cycle < self._next_check:
            return ResizeDecision()
        misses = self._misses
        self._misses = 0
        self._last_check_cycle = cycle
        self._next_check = cycle + self.period
        target = min(self.levels[bisect_right(self.thresholds, misses)],
                     self.max_level)
        if target > self.level:
            self.level = target
            return ResizeDecision(new_level=target)
        if target < self.level:
            self._target = target
            self._want_shrink = True
            if window.can_shrink_to(target):
                self.level = target
                self._want_shrink = False
                return ResizeDecision(new_level=target)
            return ResizeDecision(stop_alloc=True)
        return ResizeDecision()

    @property
    def wants_tick_every_cycle(self) -> bool:
        return True
