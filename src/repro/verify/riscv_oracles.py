"""Oracle family for the RISC-V trace ingestion frontend.

Four checks per corpus program, all at the standard smoke scale
(``SMOKE_WARMUP``/``SMOKE_MEASURE``):

* **decode round-trip** — text → binary → text preserves every record
  and the content hash, and both containers decode to identical
  ``MicroOp`` streams;
* **digest determinism** — two independently built traces of the same
  (program, seed) produce bit-identical stat digests;
* **engine identity** — the reference and fast engines agree bit for
  bit on the dynamic model;
* **golden digests** — a committed
  ``results/riscv_golden_digests.json`` pins fixed1 + dynamic per
  program, exactly like the synthetic golden file.

Plus two cache-identity checks: distinct corpus programs derive
distinct result keys, and perturbing trace *content* (not name)
changes the key — the content-addressing contract of ``result_key``.
"""

from __future__ import annotations

import json
import os

from repro.config import dynamic_config, fixed_config
from repro.experiments.cache import result_key
from repro.verify.digest import result_digest
from repro.verify.oracles import (OracleOutcome, SMOKE_MEASURE, SMOKE_SEED,
                                  SMOKE_TRACE_OPS, SMOKE_WARMUP, _smoke_run,
                                  _digest_mismatch_detail)
from repro.workloads.riscv import (RiscvTraceProgram, content_hash,
                                   load_corpus_program, pack, parse_text,
                                   render_text, riscv_program_names,
                                   to_micro_op, unpack)

#: Repo-relative location of the committed riscv golden file.
RISCV_GOLDEN_PATH = os.path.join("results", "riscv_golden_digests.json")

#: Models pinned per corpus program: the smallest static window and the
#: paper's adaptive model — the two ends the resizing policy moves
#: between.
RISCV_GOLDEN_MODELS: tuple[str, ...] = ("fixed1", "dynamic")


def _config_for(model: str):
    return fixed_config(1) if model == "fixed1" else dynamic_config(3)


def _ops_equal(a, b) -> bool:
    fields = ("pc", "op", "dst", "srcs", "addr", "size", "taken", "target")
    return len(a) == len(b) and all(
        all(getattr(x, f) == getattr(y, f) for f in fields)
        for x, y in zip(a, b))


# ------------------------------------------------------------- oracles


def check_roundtrip(programs) -> list[OracleOutcome]:
    """Text ↔ binary ↔ MicroOp equality for every corpus program."""
    outcomes = []
    for name in programs:
        program = load_corpus_program(name)
        stem = name.split(":", 1)[1]
        text = render_text(stem, program.insns)
        text_name, from_text = parse_text(text)
        bin_name, from_bin = unpack(pack(text_name, from_text))
        same_records = (from_text == program.insns
                        and from_bin == program.insns
                        and text_name == bin_name == stem)
        same_hash = (content_hash(from_bin) == program.content_hash)
        same_ops = _ops_equal([to_micro_op(i) for i in from_bin],
                              program.micro_ops())
        passed = same_records and same_hash and same_ops
        detail = "" if passed else (
            f"records={same_records} hash={same_hash} micro_ops={same_ops}")
        outcomes.append(OracleOutcome("rv-roundtrip", name, passed, detail))
    return outcomes


def check_determinism(programs) -> list[OracleOutcome]:
    """Two independent trace builds + runs ⇒ identical digests."""
    outcomes = []
    for name in programs:
        program = load_corpus_program(name)
        # independent adapter instances: nothing may leak between builds
        rebuilt = RiscvTraceProgram(name, list(program.insns))
        digests = []
        for source in (program, rebuilt):
            trace = source.trace(SMOKE_TRACE_OPS, seed=SMOKE_SEED)
            digests.append(result_digest(
                _smoke_run(dynamic_config(3), trace)))
        passed = digests[0] == digests[1]
        outcomes.append(OracleOutcome(
            "rv-determinism", name, passed,
            "" if passed else "rebuilt trace digest drifted"))
    return outcomes


def check_engine_identity(programs) -> list[OracleOutcome]:
    """Reference vs fast engine: bit-identical dynamic-model digests."""
    outcomes = []
    for name in programs:
        trace = load_corpus_program(name).trace(SMOKE_TRACE_OPS,
                                                seed=SMOKE_SEED)
        ref = _smoke_run(dynamic_config(3), trace, engine="reference")
        fast = _smoke_run(dynamic_config(3), trace, engine="fast")
        passed = result_digest(ref) == result_digest(fast)
        outcomes.append(OracleOutcome(
            "rv-engines", name, passed,
            "" if passed else _digest_mismatch_detail(ref, fast)))
    return outcomes


def check_cache_identity(programs) -> list[OracleOutcome]:
    """Result keys are content-addressed by the trace hash."""
    outcomes = []
    config = dynamic_config(3)

    def key_for(program: str) -> str:
        return result_key(program, config, seed=SMOKE_SEED,
                          warmup=SMOKE_WARMUP, measure=SMOKE_MEASURE,
                          trace_ops=SMOKE_TRACE_OPS)

    keys = [key_for(name) for name in programs]
    distinct = len(set(keys)) == len(keys)
    outcomes.append(OracleOutcome(
        "rv-cache-key", "distinct-programs", distinct,
        "" if distinct else "two corpus programs share a result key"))

    # perturbing content must change the key even under the same name
    name = programs[0]
    program = load_corpus_program(name)
    from repro.workloads.riscv import corpus as corpus_mod
    mutated = RiscvTraceProgram(name, list(program.insns[:-1])
                                + [program.insns[0]])
    original_key = key_for(name)
    corpus_mod._memo[name] = mutated
    try:
        mutated_key = key_for(name)
    finally:
        corpus_mod._memo[name] = program
    moved = mutated_key != original_key
    outcomes.append(OracleOutcome(
        "rv-cache-key", "content-sensitivity", moved,
        "" if moved else "editing trace content left the result key "
                         "unchanged"))
    return outcomes


# -------------------------------------------------------------- golden


def compute_riscv_digests(programs,
                          models=RISCV_GOLDEN_MODELS,
                          engine: str | None = None) -> dict:
    digests: dict[str, dict[str, str]] = {}
    for name in programs:
        trace = load_corpus_program(name).trace(SMOKE_TRACE_OPS,
                                                seed=SMOKE_SEED)
        digests[name] = {
            model: result_digest(_smoke_run(_config_for(model), trace,
                                            engine=engine))
            for model in models}
    return digests


def write_riscv_golden(path: str = RISCV_GOLDEN_PATH,
                       programs=None) -> dict:
    """Recompute and write the riscv golden file; returns the payload."""
    from repro.pipeline.core import SIM_VERSION
    programs = list(programs or riscv_program_names())
    payload = {
        "sim_version": SIM_VERSION,
        "corpus": {"programs": programs,
                   "models": list(RISCV_GOLDEN_MODELS),
                   "content": {p: load_corpus_program(p).content_hash
                               for p in programs},
                   "warmup": SMOKE_WARMUP, "measure": SMOKE_MEASURE,
                   "seed": SMOKE_SEED},
        "digests": compute_riscv_digests(programs),
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def check_riscv_golden(path: str = RISCV_GOLDEN_PATH,
                       engine: str | None = None) -> list[OracleOutcome]:
    """Compare fresh corpus digests against the committed file."""
    from repro.pipeline.core import SIM_VERSION
    try:
        with open(path, encoding="utf-8") as fh:
            golden = json.load(fh)
    except FileNotFoundError:
        return [OracleOutcome(
            "rv-golden", path, False,
            "riscv golden file missing — run "
            "`python -m repro.verify riscv --regen`")]
    outcomes = []
    version_ok = golden.get("sim_version") == SIM_VERSION
    outcomes.append(OracleOutcome(
        "rv-golden", "sim_version", version_ok,
        "" if version_ok else
        f"golden file is for SIM_VERSION {golden.get('sim_version')!r}, "
        f"simulator is {SIM_VERSION!r} — regenerate"))
    if not version_ok:
        return outcomes
    recorded = golden.get("digests", {})
    programs = golden.get("corpus", {}).get("programs", list(recorded))
    models = golden.get("corpus", {}).get("models",
                                          list(RISCV_GOLDEN_MODELS))
    fresh = compute_riscv_digests(programs, models, engine=engine)
    for program in programs:
        for model in models:
            want = recorded.get(program, {}).get(model)
            got = fresh.get(program, {}).get(model)
            same = want == got and want is not None
            outcomes.append(OracleOutcome(
                "rv-golden", f"{program}/{model}", same,
                "" if same else f"digest drifted: recorded {want}, "
                                f"recomputed {got}"))
    return outcomes


# ----------------------------------------------------------------- all


def run_riscv_oracles(programs=None, golden_path: str = RISCV_GOLDEN_PATH,
                      engine: str | None = None) -> list[OracleOutcome]:
    """The full riscv oracle suite over the corpus."""
    programs = list(programs or riscv_program_names())
    if not programs:
        return [OracleOutcome(
            "rv-corpus", "benchmarks/riscv", False,
            "no corpus traces found — run "
            "`python tools/rv_trace.py generate`")]
    outcomes = check_roundtrip(programs)
    outcomes += check_determinism(programs)
    outcomes += check_engine_identity(programs)
    outcomes += check_cache_identity(programs)
    outcomes += check_riscv_golden(golden_path, engine=engine)
    return outcomes
