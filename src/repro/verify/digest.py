"""Canonical stat fingerprints of simulation results.

A *digest* is a sha256 over the canonical JSON encoding of every
timing-observable statistic of a run.  Two runs share a digest iff they
are behaviourally identical — same cycle count, same commit stream
accounting, same level trajectory, same memory-system activity — which
is what the differential oracles in :mod:`repro.verify.oracles` and the
golden-digest regression (:mod:`repro.verify.golden`) compare.

Deliberately **excluded** from the payload are the counters that vary
with how the main loop *stepped* rather than what the machine *did*:

* ``fetch_stall_cycles`` / ``dispatch_stall_cycles`` — fast-forwarding
  jumps over provably idle cycles, so these per-cycle stall tallies are
  only accumulated on stepped cycles;
* ``stall_slots`` (the CPI-stack raw material) — a fast-forward jump
  charges all skipped commit slots to the persisted stall reason (or the
  ``policy_timer`` bucket) in one lump;
* ``energy_nj`` / ``edp`` — annotated after the fact by the energy
  model, not produced by the pipeline, and absent until annotation.

Everything else — cycles, commit/dispatch/issue/squash counts, level
residency and the full transition log, L2 demand-miss detection times,
MLP intervals, mispredict distances, memory-system counters, structure
activity — is included, so the digest is sensitive to any genuine
timing change while being invariant to the fast-forward optimisation.
That invariance is not assumed: ``tests/test_verify.py`` and the
fast-forward oracle prove it on every run of the suite.
"""

from __future__ import annotations

import hashlib
import json

from repro.stats import SimulationResult


def digest_payload(result: SimulationResult) -> dict:
    """The canonical, JSON-encodable view of one result."""
    stats = result.stats
    payload: dict[str, object] = {
        "program": result.program,
        "model": result.model,
        "level": result.level,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": repr(result.ipc),
        "avg_load_latency": repr(result.avg_load_latency),
        "mispredict_rate": repr(result.mispredict_rate),
        "mlp": repr(result.mlp),
        "level_residency": {str(k): repr(v)
                            for k, v in sorted(result.level_residency.items())},
        "line_usage": {k: v for k, v in sorted(result.line_usage.items())},
        "memory_stats": {k: (repr(v) if isinstance(v, float) else v)
                         for k, v in sorted(result.memory_stats.items())},
    }
    if stats is not None:
        payload["stats"] = {
            "committed_uops": stats.committed_uops,
            "committed_loads": stats.committed_loads,
            "committed_stores": stats.committed_stores,
            "committed_branches": stats.committed_branches,
            "committed_mispredicts": stats.committed_mispredicts,
            "dispatched_uops": stats.dispatched_uops,
            "issued_uops": stats.issued_uops,
            "squashed_uops": stats.squashed_uops,
            "wrong_path_uops": stats.wrong_path_uops,
            "level_cycles": {str(k): v
                             for k, v in sorted(stats.level_cycles.items())},
            "level_transitions": [list(t) for t in stats.level_transitions],
            "enlarge_transitions": stats.enlarge_transitions,
            "shrink_transitions": stats.shrink_transitions,
            "stop_alloc_cycles": stats.stop_alloc_cycles,
            "transition_stall_cycles": stats.transition_stall_cycles,
            "l2_miss_cycles": list(stats.l2_miss_cycles),
            "demand_miss_intervals": [list(t)
                                      for t in stats.demand_miss_intervals],
            "mispredict_distances": list(stats.mispredict_distances),
            "activity": stats.activity.as_dict(),
        }
    return payload


def result_digest(result: SimulationResult) -> str:
    """sha256 hex digest of the canonical payload."""
    encoded = json.dumps(digest_payload(result), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def diff_payloads(a: dict, b: dict, prefix: str = "") -> list[str]:
    """Human-readable field-level differences between two payloads.

    Used by the oracles to say *what* diverged when digests mismatch,
    instead of just reporting two opaque hashes.
    """
    diffs: list[str] = []
    keys = sorted(set(a) | set(b))
    for key in keys:
        path = f"{prefix}{key}"
        if key not in a:
            diffs.append(f"{path}: only in second")
        elif key not in b:
            diffs.append(f"{path}: only in first")
        elif isinstance(a[key], dict) and isinstance(b[key], dict):
            diffs.extend(diff_payloads(a[key], b[key], prefix=f"{path}."))
        elif a[key] != b[key]:
            av, bv = repr(a[key]), repr(b[key])
            if len(av) > 60:
                av = av[:57] + "..."
            if len(bv) > 60:
                bv = bv[:57] + "..."
            diffs.append(f"{path}: {av} != {bv}")
    return diffs
