"""Paired-run fuzzing: random traces, differential assertions.

Each fuzz iteration draws a random (program, trace seed) workload and
runs one *pair* of simulations whose results must be bit-identical:

* an ``ff`` pair — the dynamic model with and without idle-cycle
  fast-forwarding;
* a ``pin`` pair — :class:`~repro.core.StaticPolicy` at a random level
  against a random adaptive policy pinned to that level;
* with ``engines=True`` (``--engines``), an ``engine`` pair instead —
  the same run on the reference and the fast execution engine
  (:mod:`repro.pipeline.engine`), alternating the dynamic model with a
  random adaptive policy and a random fixed level.  The engine choice
  is not part of the result key, so the fast run keys itself apart via
  ``key_extra``.

The pairs are fanned out through the PR-1 parallel campaign executor
(:func:`repro.experiments.parallel.execute_campaign`) over an
in-memory store, so a fuzz session with many seeds uses every core.
Everything derives from ``base_seed``, so a failing session replays
exactly with the same arguments.
"""

from __future__ import annotations

import random

from repro.config import dynamic_config, fixed_config
from repro.core import StaticPolicy, make_policy
from repro.experiments.cache import JobRecorder, JobSpec, ResultStore, result_key
from repro.experiments.parallel import execute_campaign
from repro.verify.digest import result_digest
from repro.verify.oracles import ADAPTIVE_POLICIES, OracleOutcome
from repro.workloads import program_names

#: Fuzz runs are smaller than smoke runs: more seeds beats more ops.
FUZZ_WARMUP = 1_000
FUZZ_MEASURE = 4_000
FUZZ_TRACE_OPS = FUZZ_WARMUP + FUZZ_MEASURE + 1_000


def _pair_for(index: int, base_seed: int,
              engines: bool = False) -> tuple[str, str, JobSpec, JobSpec]:
    """The ``index``-th deterministic fuzz pair: (kind, subject, a, b)."""
    rng = random.Random((base_seed << 20) ^ index)
    program = rng.choice(program_names())
    seed = rng.randrange(1, 1 << 16)
    config = dynamic_config(3)
    common = dict(program=program, config=config, seed=seed,
                  warmup=FUZZ_WARMUP, measure=FUZZ_MEASURE,
                  trace_ops=FUZZ_TRACE_OPS)
    key_args = dict(seed=seed, warmup=FUZZ_WARMUP, measure=FUZZ_MEASURE,
                    trace_ops=FUZZ_TRACE_OPS)
    if engines:
        # engine pair: identical run, reference vs fast backend.  Like
        # fast_forward, the engine is deliberately absent from the
        # result key, so the fast run disambiguates via key_extra.
        if index % 2 == 0:
            name = rng.choice(ADAPTIVE_POLICIES)
            make = lambda: make_policy(name, config.max_level,   # noqa: E731
                                       config.memory.min_latency)
            subject_cfg = f"dynamic/{name}"
        else:
            level = rng.randrange(1, config.max_level + 1)
            config = fixed_config(level)
            common["config"] = config
            make = lambda: None                                  # noqa: E731
            subject_cfg = f"fixed L{level}"
        policy_a, policy_b = make(), make()
        spec_a = JobSpec(key=result_key(program, config, policy=policy_a,
                                        **key_args),
                         policy=policy_a, engine="reference", **common)
        spec_b = JobSpec(key=result_key(program, config, policy=policy_b,
                                        key_extra=("engine", "fast"),
                                        **key_args),
                         policy=policy_b, engine="fast", **common)
        return ("fuzz-engine", f"{program} seed={seed} {subject_cfg}",
                spec_a, spec_b)
    if index % 2 == 0:
        # ff pair: same policy, fast-forward on vs off.  fast_forward is
        # (deliberately) not part of the result key, so the off-run keys
        # itself apart via key_extra.
        policy_a = make_policy("mlp", config.max_level,
                               config.memory.min_latency)
        policy_b = make_policy("mlp", config.max_level,
                               config.memory.min_latency)
        spec_a = JobSpec(key=result_key(program, config, policy=policy_a,
                                        **key_args),
                         policy=policy_a, **common)
        spec_b = JobSpec(key=result_key(program, config, policy=policy_b,
                                        key_extra=("ff", False), **key_args),
                         policy=policy_b, fast_forward=False, **common)
        return "fuzz-ff", f"{program} seed={seed}", spec_a, spec_b
    level = rng.randrange(1, config.max_level + 1)
    name = rng.choice(ADAPTIVE_POLICIES)
    static = StaticPolicy(level)
    pinned = make_policy(name, config.max_level,
                         config.memory.min_latency).pin(level)
    spec_a = JobSpec(key=result_key(program, config, policy=static,
                                    **key_args),
                     policy=static, **common)
    spec_b = JobSpec(key=result_key(program, config, policy=pinned,
                                    **key_args),
                     policy=pinned, **common)
    return "fuzz-pin", f"{program} seed={seed} {name}@L{level}", spec_a, spec_b


def run_fuzz(n_pairs: int = 8, jobs: int | None = None,
             base_seed: int = 1,
             engines: bool = False) -> list[OracleOutcome]:
    """Run ``n_pairs`` random differential pairs; returns outcomes.

    ``engines=True`` switches every pair to the reference-vs-fast
    engine kind (the ``--engines`` CLI mode).
    """
    pairs = [_pair_for(i, base_seed, engines=engines)
             for i in range(n_pairs)]
    recorder = JobRecorder()
    for __, ___, spec_a, spec_b in pairs:
        recorder.record(spec_a)
        recorder.record(spec_b)
    store = ResultStore(directory=None)   # fuzz results are throwaway
    execute_campaign(recorder, store, jobs=jobs)
    outcomes = []
    for kind, subject, spec_a, spec_b in pairs:
        res_a = store.get(spec_a.key)
        res_b = store.get(spec_b.key)
        if res_a is None or res_b is None:
            outcomes.append(OracleOutcome(
                kind, subject, False, "pair did not execute"))
            continue
        same = result_digest(res_a) == result_digest(res_b)
        detail = ""
        if not same:
            from repro.verify.oracles import _digest_mismatch_detail
            detail = _digest_mismatch_detail(res_a, res_b)
        outcomes.append(OracleOutcome(kind, subject, same, detail))
    return outcomes
