"""Differential and metamorphic oracles over paired simulation runs.

Each ``check_*`` function runs a family of simulations and asserts a
cross-run relation that must hold *by construction* (see the package
docstring for the catalogue).  They return :class:`OracleOutcome`
records rather than raising, so the CLI and CI can report every
violation in one pass.

All oracles run at smoke scale — a few thousand measured micro-ops on
the four-program :data:`SMOKE_CORPUS` — because they compare runs
against each other, not against the paper: any violation is a simulator
bug regardless of sample size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import (
    LEVEL_TABLE,
    ProcessorConfig,
    dynamic_config,
    fixed_config,
    ideal_config,
)
from repro.core import StaticPolicy, make_policy
from repro.isa import MicroOp, OpClass
from repro.pipeline import Processor, simulate
from repro.verify.digest import diff_payloads, digest_payload, result_digest
from repro.workloads import Trace, trace_for_program

#: Two memory-intensive and two compute-intensive programs: enough to
#: exercise both sides of every policy's decision logic.
SMOKE_CORPUS: tuple[str, ...] = ("libquantum", "milc", "gcc", "sjeng")

#: Smoke-scale sample sizes (committed micro-ops).
SMOKE_WARMUP = 2_000
SMOKE_MEASURE = 6_000
SMOKE_TRACE_OPS = SMOKE_WARMUP + SMOKE_MEASURE + 1_000
SMOKE_SEED = 1

#: The adaptive policies the pin-equivalence oracle constrains.  The
#: bandit family is enrolled like any other comparator: ``.pin(N)``
#: must reduce it to the inert static fast path, exploration and all.
ADAPTIVE_POLICIES: tuple[str, ...] = ("mlp", "occupancy", "contribution",
                                      "bandit:ucb", "bandit:egreedy")


@dataclass
class OracleOutcome:
    """One oracle check on one subject."""

    oracle: str
    subject: str
    passed: bool
    detail: str = ""

    def line(self) -> str:
        mark = "ok  " if self.passed else "FAIL"
        text = f"{mark} [{self.oracle}] {self.subject}"
        if self.detail and not self.passed:
            text += f": {self.detail}"
        return text


def report(outcomes: list[OracleOutcome]) -> str:
    """Multi-line report plus a pass/fail summary line."""
    lines = [o.line() for o in outcomes]
    failed = sum(1 for o in outcomes if not o.passed)
    lines.append(f"{len(outcomes) - failed}/{len(outcomes)} oracle checks "
                 + ("passed" if not failed else f"passed, {failed} FAILED"))
    return "\n".join(lines)


_TRACE_MEMO: dict[tuple[str, int, int], Trace] = {}


def smoke_trace(program: str, seed: int = SMOKE_SEED,
                n_ops: int = SMOKE_TRACE_OPS) -> Trace:
    """Memoised smoke-scale trace for ``program``."""
    key = (program, n_ops, seed)
    trace = _TRACE_MEMO.get(key)
    if trace is None:
        trace = trace_for_program(program, n_ops=n_ops, seed=seed)
        _TRACE_MEMO[key] = trace
    return trace


def _smoke_run(config: ProcessorConfig, trace: Trace, *,
               policy=None, fast_forward: bool = True,
               engine: str | None = None):
    return simulate(config, trace, warmup=SMOKE_WARMUP,
                    measure=SMOKE_MEASURE, policy=policy,
                    fast_forward=fast_forward, engine=engine)


def _digest_mismatch_detail(res_a, res_b, limit: int = 4) -> str:
    diffs = diff_payloads(digest_payload(res_a), digest_payload(res_b))
    shown = "; ".join(diffs[:limit])
    if len(diffs) > limit:
        shown += f"; ... {len(diffs) - limit} more"
    return shown or "digests differ but payloads compare equal (?)"


# ----------------------------------------------------------------------
# 1. pin-equivalence


def check_pin_equivalence(programs=SMOKE_CORPUS,
                          policies=ADAPTIVE_POLICIES,
                          levels=(1, 2, 3)) -> list[OracleOutcome]:
    """A pinned adaptive policy must be bit-identical to StaticPolicy.

    ``ResizingPolicy.pin(level)`` freezes a policy; the processor then
    treats it exactly like a static one.  If any pinned run diverges
    from the static run at the same level, the adaptive policy is
    influencing timing through some side channel other than its resize
    decisions — a differential bug no single run could reveal.
    """
    outcomes = []
    config = dynamic_config(3)
    for program in programs:
        trace = smoke_trace(program)
        for level in levels:
            ref = _smoke_run(config, trace, policy=StaticPolicy(level))
            ref_digest = result_digest(ref)
            for name in policies:
                pinned = make_policy(
                    name, config.max_level,
                    config.memory.min_latency).pin(level)
                res = _smoke_run(config, trace, policy=pinned)
                same = result_digest(res) == ref_digest
                outcomes.append(OracleOutcome(
                    "pin-equivalence", f"{program} {name}@L{level}", same,
                    "" if same else _digest_mismatch_detail(ref, res)))
    return outcomes


# ----------------------------------------------------------------------
# 2. monotonicity


def _flat_levels() -> tuple:
    """The level table with every pipelining penalty removed: same
    sizes, depth 1 everywhere (no wakeup gap, no extra branch
    penalty)."""
    return tuple(replace(lv, iq_depth=1, rob_depth=1, lsq_depth=1)
                 for lv in LEVEL_TABLE)


#: Monotonicity holds where window size has no *modeled* downside.  One
#: downside survives even a penalty-free level table: wrong-path depth.
#: A larger window dispatches and executes more micro-ops past a
#: mispredicted branch before it resolves, and those compete for issue
#: slots and function units — so on mispredict-heavy programs (sjeng
#: loses ~12% IPC from IDEAL-1 to IDEAL-3 through this effect alone)
#: "bigger never hurts" is genuinely false, not a simulator bug.  The
#: oracle therefore runs on the branch-light memory programs, plus a
#: branch-free synthetic trace where the relation holds by construction.
MONOTONE_PROGRAMS: tuple[str, ...] = ("libquantum", "milc")


def _mlp_trace(n_ops: int = 6_000) -> Trace:
    """Branch-free cold-load/ALU mix: the only window-size effect left
    is MLP, so IPC must be monotone in window size.

    Load addresses walk a shuffled line permutation (no constant
    stride), so the prefetcher cannot hide the misses either.
    """
    import random as _random
    n_lines = 4_096
    order = list(range(n_lines))
    _random.Random(3).shuffle(order)
    ops: list[MicroOp] = []
    for i in range(n_ops):
        pc = _CODE_BASE + 4 * (i % 1_024)
        if i % 8 == 0:
            addr = _DATA_BASE + order[(i // 8) % n_lines] * 64
            ops.append(MicroOp(pc, OpClass.LOAD, dst=1 + (i % 4),
                               srcs=(), addr=addr, size=8))
        else:
            ops.append(MicroOp(pc, OpClass.IALU, dst=5 + (i % 4), srcs=()))
    return Trace("mlpmono", ops, seed=13, data_base=_DATA_BASE,
                 data_size=n_lines * 64)


def _run_trace_ipc(config: ProcessorConfig, trace: Trace) -> float:
    """Run a hand-built trace to completion (warm I-cache, no sampling
    split) and return its IPC."""
    proc = Processor(config, trace)
    line = config.l1i.line_bytes
    for addr in range(_CODE_BASE, _CODE_BASE + 4 * 1_024 + line, line):
        proc.hierarchy.l1i.install(addr, ready_at=0)
    proc.run(until_committed=len(trace.ops))
    return proc.stats.ipc


def check_monotonicity(programs=MONOTONE_PROGRAMS,
                       tolerance: float = 0.005) -> list[OracleOutcome]:
    """With window-size costs disabled, a bigger window never hurts.

    The paper's whole premise is a *trade-off*: larger windows buy MLP
    but cost ILP through pipelined resources and transition stalls.
    Remove the costs and the trade-off must disappear:

    * IDEAL (non-pipelined, penalty-free) IPC is non-decreasing in
      level;
    * the dynamic model on a penalty-free flat level table is bounded
      by its envelope — no worse than always-smallest (FIXED level 1),
      no better than always-largest (IDEAL level 3).

    Scope: see :data:`MONOTONE_PROGRAMS` — wrong-path execution depth
    scales with window size even on a penalty-free table, so the
    relation is only asserted where branch effects are negligible
    (plus the branch-free synthetic trace, where it is exact).
    ``tolerance`` is relative slack for the residual second-order
    noise (prefetch timing, wrong-path pollution) on the generated
    programs.
    """
    outcomes = []
    flat = _flat_levels()

    def check_family(label: str, run) -> None:
        ipcs = [run(ideal_config(level)) for level in (1, 2, 3)]
        nondec = all(b >= a * (1 - tolerance)
                     for a, b in zip(ipcs, ipcs[1:]))
        outcomes.append(OracleOutcome(
            "monotonicity", f"{label} ideal L1<=L2<=L3", nondec,
            "" if nondec else "IPC by level: "
            + ", ".join(f"{v:.4f}" for v in ipcs)))
        lo = run(replace(fixed_config(1), levels=flat,
                         transition_penalty=0))
        hi = run(replace(ideal_config(3), levels=flat,
                         transition_penalty=0))
        dyn = run(replace(dynamic_config(3), levels=flat,
                          transition_penalty=0))
        bounded = (dyn >= lo * (1 - tolerance)
                   and dyn <= hi * (1 + tolerance))
        outcomes.append(OracleOutcome(
            "monotonicity", f"{label} fixed1<=dyn<=ideal3", bounded,
            "" if bounded
            else f"fixed1={lo:.4f} dyn={dyn:.4f} ideal3={hi:.4f}"))

    for program in programs:
        trace = smoke_trace(program)
        check_family(program, lambda cfg: _smoke_run(cfg, trace).ipc)
    synth = _mlp_trace()
    check_family("synthetic-mlp", lambda cfg: _run_trace_ipc(cfg, synth))
    return outcomes


# ----------------------------------------------------------------------
# 3. degenerate memory


_CODE_BASE = 0x40_0000
_DATA_BASE = 0x5000_0000


def _no_miss_trace(n_ops: int = 4_000) -> Trace:
    """A branch-free load/ALU loop whose entire footprint is declared
    warm: after prewarm, no access can miss the L2.

    Branch-free matters: without mispredictions there is no wrong-path
    fetch, so no synthesized stray load can sneak a demand miss in.
    """
    data_size = 4_096                      # well under the L1D
    ops: list[MicroOp] = []
    for i in range(n_ops):
        pc = _CODE_BASE + 4 * (i % 512)    # small resident code loop
        if i % 4 == 0:
            addr = _DATA_BASE + (i * 64) % data_size
            ops.append(MicroOp(pc, OpClass.LOAD, dst=1 + (i % 8),
                               srcs=(), addr=addr, size=8))
        else:
            ops.append(MicroOp(pc, OpClass.IALU, dst=1 + (i % 8),
                               srcs=(1 + ((i + 1) % 8),)))
    return Trace("nomiss", ops, seed=11, data_base=_DATA_BASE,
                 data_size=data_size,
                 warm_regions=[(_DATA_BASE, data_size, True)])


def check_degenerate_memory(policies=("mlp", "static", "occupancy",
                                      "contribution", "bandit:ucb",
                                      "bandit:egreedy"),
                            n_ops: int = 4_000) -> list[OracleOutcome]:
    """With no demand L2 misses, the MLP trigger never fires.

    Every policy runs the same warm-everything trace.  All runs must
    observe zero demand misses; on top of that the MLP-aware policy
    (whose *only* enlarge trigger is a demand miss), the static policy
    and the bandit family (whose arms above level 1 are only eligible
    while demand misses are recent) must never leave level 1.  The
    feedback comparators are allowed to trial levels — that is their
    design — so for them the oracle only checks the no-miss premise
    held.
    """
    outcomes = []
    config = dynamic_config(3)
    for name in policies:
        trace = _no_miss_trace(n_ops)
        policy = make_policy(name, config.max_level,
                             config.memory.min_latency)
        proc = Processor(config, trace, policy=policy)
        proc.prewarm()
        # warm the code loop too: cold instruction fetch would miss the
        # L2 and (being a demand miss) trigger the MLP policy
        line = proc.config.l1i.line_bytes
        for addr in range(_CODE_BASE, _CODE_BASE + 4 * 512 + line, line):
            proc.hierarchy.l1i.install(addr, ready_at=0)
            proc.hierarchy.l2.install_span(addr - addr % 64, 64,
                                           ready_at=0, brought_by=-1,
                                           touched=True)
        proc.run(until_committed=n_ops)
        misses = len(proc.stats.l2_miss_cycles)
        premise = misses == 0
        outcomes.append(OracleOutcome(
            "degenerate-memory", f"{name} zero demand misses", premise,
            "" if premise else f"{misses} demand L2 misses detected"))
        if name in ("mlp", "static") or name.startswith("bandit:"):
            stayed = (proc.stats.level_transitions == []
                      and set(proc.stats.level_cycles) <= {1})
            outcomes.append(OracleOutcome(
                "degenerate-memory", f"{name} stays at level 1", stayed,
                "" if stayed else
                f"transitions={proc.stats.level_transitions[:6]} "
                f"level_cycles={proc.stats.level_cycles}"))
    return outcomes


# ----------------------------------------------------------------------
# 3b. seeded replay


#: Memory-intensive smoke programs: L2 misses keep the bandit's arms
#: eligible, so exploration actually happens and the replay assertion
#: has teeth.
SEEDED_REPLAY_PROGRAMS: tuple[str, ...] = ("libquantum", "milc")


def check_seeded_replay(programs=SEEDED_REPLAY_PROGRAMS,
                        seeds=(1, 7)) -> list[OracleOutcome]:
    """Seeded exploration must replay bit-identically, and the seed
    must key the result.

    Three relations per (program, bandit kind):

    * *replay* — two runs with the same seed, fresh policy objects,
      produce bit-identical stat digests.  Any divergence means the
      exploration sequence leaked state from somewhere other than
      ``(seed, draw_index)`` — host hash order, process state, a
      stale class attribute;
    * *engine replay* — the same seeded run on the reference and fast
      engines is bit-identical.  The bandit ticks every cycle, so this
      is the policy-timer quiescence obligation exercised through the
      learned controller's own state machine;
    * *seed keying* — different seeds yield different ``result_key``
      content addresses (the seed rides the policy fingerprint), so a
      cached campaign can never serve seed A's run for seed B.
    """
    from repro.experiments.cache import result_key

    outcomes = []
    config = dynamic_config(3)

    def bandit(kind: str, seed: int):
        return make_policy(f"bandit:{kind}:{seed}", config.max_level,
                           config.memory.min_latency)

    for program in programs:
        trace = smoke_trace(program)
        for kind in ("ucb", "egreedy"):
            subject = f"{program} bandit:{kind}"
            ref = _smoke_run(config, trace, policy=bandit(kind, seeds[0]))
            ref_digest = result_digest(ref)
            replay = _smoke_run(config, trace,
                                policy=bandit(kind, seeds[0]))
            same = result_digest(replay) == ref_digest
            outcomes.append(OracleOutcome(
                "seeded-replay", f"{subject} same-seed digest", same,
                "" if same else _digest_mismatch_detail(ref, replay)))
            fast = _smoke_run(config, trace, engine="fast",
                              policy=bandit(kind, seeds[0]))
            same = result_digest(fast) == ref_digest
            outcomes.append(OracleOutcome(
                "seeded-replay", f"{subject} engine digest", same,
                "" if same else _digest_mismatch_detail(ref, fast)))
            keys = [result_key(program, config, seed=SMOKE_SEED,
                               warmup=SMOKE_WARMUP, measure=SMOKE_MEASURE,
                               trace_ops=SMOKE_TRACE_OPS,
                               policy=bandit(kind, seed))
                    for seed in seeds]
            distinct = len(set(keys)) == len(keys)
            outcomes.append(OracleOutcome(
                "seeded-replay", f"{subject} seed keys result", distinct,
                "" if distinct else
                f"seeds {seeds} collide on result_key {keys[0][:16]}..."))
    return outcomes


# ----------------------------------------------------------------------
# 4. fast-forward equivalence


def check_fast_forward_equivalence(programs=SMOKE_CORPUS) -> list[OracleOutcome]:
    """Fast-forwarding over idle cycles must not change behaviour.

    Each program runs twice on the dynamic model (whose policy timers
    are exactly what a fast-forward bug would skew) and twice on the
    base fixed configuration; the stat digests must match bit for bit.
    """
    outcomes = []
    for program in programs:
        trace = smoke_trace(program)
        for label, config in (("dynamic", dynamic_config(3)),
                              ("fixed1", fixed_config(1))):
            with_ff = _smoke_run(config, trace, fast_forward=True)
            without = _smoke_run(config, trace, fast_forward=False)
            same = result_digest(with_ff) == result_digest(without)
            outcomes.append(OracleOutcome(
                "ff-equivalence", f"{program} {label}", same,
                "" if same else _digest_mismatch_detail(with_ff, without)))
    return outcomes


# ----------------------------------------------------------------------
# 5. engine equivalence


def check_engine_equivalence(programs=None) -> list[OracleOutcome]:
    """The fast engine must be bit-identical to the reference stepper.

    :mod:`repro.pipeline.engine` promises behavioural identity: the
    batched event-driven stepper may only skip cycles in which no stage
    could do observable work (the quiescence obligations of DESIGN.md).
    Each program runs reference-vs-fast on the dynamic model (policy
    timers, level transitions and transition-stall accounting are the
    states a wrong jump would skew) and on the base fixed configuration
    (the pure machine-quiescence case); the stat digests must match bit
    for bit.

    Defaults to the **full** program table — this is the oracle that
    licenses ``--engine fast`` everywhere else, so it earns the wider
    net than the smoke corpus (pass ``programs`` to narrow it).
    """
    from repro.workloads import program_names
    if programs is None:
        programs = program_names()
    outcomes = []
    for program in programs:
        trace = smoke_trace(program)
        for label, config in (("dynamic", dynamic_config(3)),
                              ("fixed1", fixed_config(1))):
            ref = _smoke_run(config, trace, engine="reference")
            fast = _smoke_run(config, trace, engine="fast")
            same = result_digest(ref) == result_digest(fast)
            outcomes.append(OracleOutcome(
                "engine-equivalence", f"{program} {label}", same,
                "" if same else _digest_mismatch_detail(ref, fast)))
    return outcomes


# ----------------------------------------------------------------------


def run_all_oracles(programs=SMOKE_CORPUS) -> list[OracleOutcome]:
    """The full oracle suite (golden digests are separate: they need a
    committed reference file, see :mod:`repro.verify.golden`).

    ``programs`` scopes the pin-equivalence and fast-forward families;
    monotonicity keeps its own corpus (see :data:`MONOTONE_PROGRAMS` —
    the relation is deliberately not asserted on branchy programs).
    """
    outcomes = []
    outcomes += check_pin_equivalence(programs)
    outcomes += check_monotonicity(
        tuple(p for p in programs if p in MONOTONE_PROGRAMS)
        or MONOTONE_PROGRAMS)
    outcomes += check_degenerate_memory()
    outcomes += check_seeded_replay(
        tuple(p for p in programs if p in SEEDED_REPLAY_PROGRAMS)
        or SEEDED_REPLAY_PROGRAMS)
    outcomes += check_fast_forward_equivalence(programs)
    outcomes += check_engine_equivalence(programs)
    return outcomes
