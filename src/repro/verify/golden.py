"""Committed golden stat digests.

``results/golden_digests.json`` pins the exact behaviour of the
simulator on the smoke corpus: one digest per (program, model) cell,
keyed by ``SIM_VERSION``.  CI recomputes the digests and compares —
any mismatch means the simulator's timing changed without the version
being bumped, i.e. an *unintentional* behaviour change slipped in.
Intentional changes bump ``SIM_VERSION`` (which also invalidates the
result cache) and regenerate the file in the same commit:

    python -m repro.verify regen
"""

from __future__ import annotations

import json
import os

from repro.config import dynamic_config, fixed_config, ideal_config
from repro.verify.digest import result_digest
from repro.verify.oracles import SMOKE_CORPUS, _smoke_run, smoke_trace

#: Repo-relative location of the committed golden file.
GOLDEN_PATH = os.path.join("results", "golden_digests.json")

#: The model points pinned per program: the base machine, the paper's
#: dynamic model, and the IDEAL-3 upper bound — together they cover the
#: static path, the adaptive path and the non-pipelined path.
GOLDEN_MODELS: tuple[str, ...] = ("fixed1", "dynamic", "ideal3")


def _config_for(model: str):
    if model == "fixed1":
        return fixed_config(1)
    if model == "dynamic":
        return dynamic_config(3)
    if model == "ideal3":
        return ideal_config(3)
    raise ValueError(f"unknown golden model {model!r}")


def compute_digests(programs=SMOKE_CORPUS, models=GOLDEN_MODELS,
                    engine: str | None = None) -> dict[str, dict[str, str]]:
    """Digest every (program, model) golden cell at smoke scale.

    ``engine`` selects the main-loop backend; digests are engine-
    independent by contract, so ``check --engine fast`` doubles as an
    equivalence check against reference-computed goldens.
    """
    digests: dict[str, dict[str, str]] = {}
    for program in programs:
        trace = smoke_trace(program)
        digests[program] = {
            model: result_digest(_smoke_run(_config_for(model), trace,
                                            engine=engine))
            for model in models}
    return digests


def load_golden(path: str = GOLDEN_PATH) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def write_golden(path: str = GOLDEN_PATH, programs=SMOKE_CORPUS,
                 models=GOLDEN_MODELS) -> dict:
    """Recompute and write the golden file; returns what was written."""
    from repro.pipeline.core import SIM_VERSION
    payload = {
        "sim_version": SIM_VERSION,
        "corpus": {"programs": list(programs), "models": list(models),
                   "warmup": 2_000, "measure": 6_000, "seed": 1},
        "digests": compute_digests(programs, models),
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def check_golden(path: str = GOLDEN_PATH,
                 engine: str | None = None) -> list:
    """Compare freshly computed digests against the committed file.

    Returns :class:`~repro.verify.oracles.OracleOutcome` records, one
    per golden cell plus one for the version key, so a drift report
    names exactly which program/model cells moved.  ``engine`` selects
    the backend recomputing the digests (the committed file is always
    regenerated with the reference engine; any backend must reproduce
    it bit for bit).
    """
    from repro.pipeline.core import SIM_VERSION
    from repro.verify.oracles import OracleOutcome
    outcomes = []
    try:
        golden = load_golden(path)
    except FileNotFoundError:
        return [OracleOutcome(
            "golden", path, False,
            "golden file missing — run `python -m repro.verify regen`")]
    version_ok = golden.get("sim_version") == SIM_VERSION
    outcomes.append(OracleOutcome(
        "golden", "sim_version", version_ok,
        "" if version_ok else
        f"golden file is for SIM_VERSION {golden.get('sim_version')!r}, "
        f"simulator is {SIM_VERSION!r} — regenerate"))
    if not version_ok:
        # comparing digests across versions would report every cell as
        # drifted; the version line already says what to do
        return outcomes
    recorded = golden.get("digests", {})
    programs = golden.get("corpus", {}).get("programs", list(recorded))
    models = golden.get("corpus", {}).get("models", list(GOLDEN_MODELS))
    fresh = compute_digests(programs, models, engine=engine)
    for program in programs:
        for model in models:
            want = recorded.get(program, {}).get(model)
            got = fresh.get(program, {}).get(model)
            same = want == got and want is not None
            outcomes.append(OracleOutcome(
                "golden", f"{program}/{model}", same,
                "" if same else f"recorded {str(want)[:12]}..., "
                f"computed {str(got)[:12]}..."))
    return outcomes
