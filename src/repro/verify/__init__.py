"""Differential and metamorphic testing of the simulator.

Single runs can only be eyeballed; *pairs* of runs can be asserted on.
This package checks cross-run relations that must hold by construction:

* **pin-equivalence** — any adaptive policy pinned to a constant level
  is bit-identical to :class:`~repro.core.StaticPolicy` at that level;
* **monotonicity** — with pipelining and transition penalties disabled,
  a larger window never hurts: IDEAL IPC is non-decreasing in level and
  the dynamic model lands between FIXED level 1 and IDEAL level 3;
* **degenerate memory** — with every line pre-installed (no demand L2
  misses) the MLP-aware policy has no trigger and never leaves level 1;
* **fast-forward equivalence** — the idle-cycle fast-forward is a pure
  host-speed optimisation: disabling it must not change any
  timing-observable statistic;
* **golden digests** — committed per-benchmark stat fingerprints
  (``results/golden_digests.json``, keyed by ``SIM_VERSION``) catch
  *unintentional* behaviour changes; intentional ones bump the version
  and regenerate.

``python -m repro.verify`` runs the oracles, checks or regenerates the
golden file, and drives the paired-run fuzzer (random traces through
the parallel campaign executor).
"""

from repro.verify.digest import diff_payloads, digest_payload, result_digest
from repro.verify.golden import (
    GOLDEN_PATH,
    check_golden,
    compute_digests,
    load_golden,
    write_golden,
)
from repro.verify.oracles import (
    SMOKE_CORPUS,
    OracleOutcome,
    check_degenerate_memory,
    check_fast_forward_equivalence,
    check_monotonicity,
    check_pin_equivalence,
    run_all_oracles,
)

__all__ = [
    "GOLDEN_PATH",
    "OracleOutcome",
    "SMOKE_CORPUS",
    "check_degenerate_memory",
    "check_fast_forward_equivalence",
    "check_golden",
    "check_monotonicity",
    "check_pin_equivalence",
    "compute_digests",
    "diff_payloads",
    "digest_payload",
    "load_golden",
    "result_digest",
    "run_all_oracles",
    "write_golden",
]
