"""Oracles for the SMT pipeline (:mod:`repro.pipeline.smt`).

Four families, all smoke-scale (see :mod:`repro.verify.oracles` for the
philosophy — every relation here holds *by construction*, so any
violation is a simulator bug regardless of sample size):

* **smt-determinism** — a 2-thread SMT run executed twice from fresh
  state produces bit-identical per-thread stat digests.  Per-thread
  digest identity is a stronger claim than aggregate identity: it pins
  each thread's committed counters, miss intervals and level residency
  individually.

* **smt-baseline** — a 1-thread SMT run under the ``equal`` partition
  (whose single-thread quota degrades to the whole window at the
  provisioned level) is bit-identical to the single-core baseline
  ``fixed`` model on the same trace.  This is the SMT analogue of the
  pin-equivalence oracle: it proves the thread-indexed stages reduce
  exactly to the baseline stages when there is nothing to share.

* **smt-invariants** — 2- and 3-thread runs under every partition
  policy with per-cycle invariant validation on: partitions never
  overlap nor exceed the active capacity (quota sums, occupancy sums,
  per-thread minimums), and every thread commits its trace in order.

* **smt-engines** — the fast engine must *explicitly* fall back to the
  SMT reference stepper (``is_smt`` deferral), so running under
  ``engine="fast"`` is digest-identical to ``engine="reference"``.
"""

from __future__ import annotations

from repro.config import fixed_config, smt_config
from repro.pipeline.smt import simulate_smt
from repro.verify.digest import digest_payload, diff_payloads
from repro.verify.oracles import (
    SMOKE_MEASURE,
    SMOKE_WARMUP,
    OracleOutcome,
    _smoke_run,
    smoke_trace,
)

#: ≥ 5 programs for the single-thread ≡ baseline identity (the
#: acceptance bar of the SMT scenario): both memory- and compute-bound.
BASELINE_PROGRAMS: tuple[str, ...] = (
    "libquantum", "milc", "gcc", "sjeng", "lbm")

#: thread pairings for the multi-thread oracles: a mixed MLP/ILP pair
#: and a 3-way mix including both behaviours.
SMT_MIXES: tuple[tuple[str, ...], ...] = (
    ("libquantum", "sjeng"),
    ("milc", "gcc", "libquantum"),
)


def _smt_run(programs, partition: str, fetch: str, *,
             level: int = 3, validate: bool = False,
             engine: str | None = None, n_ops: int | None = None):
    config = smt_config(threads=len(programs), partition=partition,
                        fetch=fetch, level=level)
    traces = [smoke_trace(p, n_ops=n_ops) if n_ops else smoke_trace(p)
              for p in programs]
    return simulate_smt(config, traces, warmup=SMOKE_WARMUP,
                        measure=SMOKE_MEASURE, validate=validate,
                        engine=engine)


def _thread_digest_diff(run_a, run_b, limit: int = 4) -> str:
    """First per-thread digest difference between two SMT runs."""
    for tid, (ra, rb) in enumerate(zip(run_a.threads, run_b.threads)):
        diffs = diff_payloads(digest_payload(ra), digest_payload(rb))
        if diffs:
            shown = "; ".join(diffs[:limit])
            if len(diffs) > limit:
                shown += f"; ... {len(diffs) - limit} more"
            return f"thread {tid} ({ra.program}): {shown}"
    return ""


def check_smt_determinism(mixes=SMT_MIXES) -> list[OracleOutcome]:
    """Same config + traces, run twice → identical per-thread digests."""
    outcomes = []
    for programs in mixes:
        subject = "+".join(programs)
        run_a = _smt_run(programs, "mlp", "mlp")
        run_b = _smt_run(programs, "mlp", "mlp")
        detail = _thread_digest_diff(run_a, run_b)
        outcomes.append(OracleOutcome(
            "smt-determinism", f"{subject} mlp/mlp",
            passed=not detail, detail=detail))
    return outcomes


def check_smt_baseline_identity(
        programs=BASELINE_PROGRAMS, levels=(3,)) -> list[OracleOutcome]:
    """1-thread SMT (equal partition, icount fetch) ≡ fixed baseline."""
    outcomes = []
    for program in programs:
        for level in levels:
            run = _smt_run((program,), "equal", "icount", level=level)
            base = _smoke_run(fixed_config(level), smoke_trace(program))
            pay_smt = digest_payload(run.threads[0])
            pay_base = digest_payload(base)
            diffs = diff_payloads(pay_smt, pay_base)
            detail = "; ".join(diffs[:4]) if diffs else ""
            outcomes.append(OracleOutcome(
                "smt-baseline", f"{program} L{level}",
                passed=not diffs, detail=detail))
    return outcomes


def check_smt_invariants(mixes=SMT_MIXES) -> list[OracleOutcome]:
    """Per-cycle partition/occupancy invariants + in-order commit.

    ``validate=True`` makes the processor check after every stepped
    cycle that partitioned quotas sum exactly to the active capacity
    with no thread starved, that per-thread occupancies sum to the
    shared occupancy (disjointness), and that each thread's commit
    stream follows its trace order.  Any violation raises.
    """
    outcomes = []
    # Long traces: in a mixed-speed pairing the fast thread cannot
    # pause while the slow one reaches its commit target, so it runs
    # far past its own — headroom keeps it from draining mid-run.
    n_ops = (SMOKE_WARMUP + SMOKE_MEASURE) * 8
    for programs in mixes:
        subject = "+".join(programs)
        for partition in ("mlp", "equal", "shared"):
            fetch = "mlp" if partition == "mlp" else "icount"
            try:
                run = _smt_run(programs, partition, fetch, validate=True,
                               n_ops=n_ops)
            except AssertionError as exc:
                outcomes.append(OracleOutcome(
                    "smt-invariants", f"{subject} {partition}",
                    passed=False, detail=str(exc)))
                continue
            # Every thread must have made measured progress.  A thread
            # that ran ahead during warmup (it cannot pause while the
            # others catch up) measures fewer than SMOKE_MEASURE
            # commits, so the exact count is not checkable here — the
            # per-cycle validation above is the substantive assertion.
            starved = [r.program for r in run.threads
                       if r.instructions <= 0]
            outcomes.append(OracleOutcome(
                "smt-invariants", f"{subject} {partition}",
                passed=not starved,
                detail=(f"threads with zero measured commits: "
                        f"{', '.join(starved)}" if starved else "")))
    return outcomes


def check_smt_engine_fallback(mixes=SMT_MIXES[:1]) -> list[OracleOutcome]:
    """engine="fast" defers to the SMT reference stepper: digests equal."""
    outcomes = []
    for programs in mixes:
        subject = "+".join(programs)
        ref = _smt_run(programs, "mlp", "mlp", engine="reference")
        fast = _smt_run(programs, "mlp", "mlp", engine="fast")
        detail = _thread_digest_diff(ref, fast)
        outcomes.append(OracleOutcome(
            "smt-engines", f"{subject} reference-vs-fast",
            passed=not detail, detail=detail))
    return outcomes


def run_smt_oracles(programs=None) -> list[OracleOutcome]:
    """The full SMT oracle suite (``python -m repro.verify smt``).

    ``programs`` overrides the baseline-identity corpus only; the
    multi-thread mixes are fixed pairings chosen to cover both MLP- and
    ILP-dominated threads.
    """
    outcomes: list[OracleOutcome] = []
    outcomes += check_smt_baseline_identity(
        tuple(programs) if programs else BASELINE_PROGRAMS)
    outcomes += check_smt_determinism()
    outcomes += check_smt_invariants()
    outcomes += check_smt_engine_fallback()
    return outcomes
