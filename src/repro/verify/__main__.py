"""``python -m repro.verify`` — the verification CLI.

Subcommands:

* ``oracles`` — run the differential/metamorphic oracle suite on the
  smoke corpus (default when no subcommand is given);
* ``check`` — recompute the smoke-corpus stat digests and compare them
  against the committed ``results/golden_digests.json``; ``--engine
  fast`` recomputes them with the fast engine (the goldens are always
  regenerated with the reference engine, so this doubles as an
  equivalence check);
* ``regen`` — recompute and rewrite the golden file (do this in the
  same commit as an intentional ``SIM_VERSION`` bump);
* ``engines`` — the engine-equivalence oracle over the *full* program
  table (reference vs fast digest identity per program and model);
* ``fuzz`` — random-trace paired-run fuzzing through the parallel
  campaign executor (``--engines`` pairs the two execution engines
  instead of the ff/pin kinds);
* ``riscv`` — the trace-frontend oracle suite
  (:mod:`repro.verify.riscv_oracles`): decode round-trip, digest
  determinism, reference↔fast bit-identity and committed golden
  digests over the ``benchmarks/riscv`` corpus (``--regen`` rewrites
  ``results/riscv_golden_digests.json``);
* ``smt`` — the SMT oracle suite (:mod:`repro.verify.smt_oracles`):
  per-thread digest determinism, single-thread-SMT ≡ baseline
  pin-equivalence, per-cycle partition invariants and the fast-engine
  fallback identity.

Exit status is 0 iff every requested check passed.
"""

from __future__ import annotations

import argparse
import sys

from repro.verify.golden import GOLDEN_PATH, check_golden, write_golden
from repro.verify.oracles import (
    SMOKE_CORPUS,
    report,
    run_all_oracles,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="differential / metamorphic simulator verification")
    sub = parser.add_subparsers(dest="command")

    p_oracles = sub.add_parser("oracles", help="run the oracle suite")
    p_oracles.add_argument("--programs", nargs="+", default=list(SMOKE_CORPUS),
                           help="smoke programs (default: %(default)s)")

    p_check = sub.add_parser("check", help="check golden digests")
    p_check.add_argument("--path", default=GOLDEN_PATH)
    p_check.add_argument("--engine", choices=("reference", "fast"),
                         default=None,
                         help="execution engine recomputing the digests "
                              "(default: reference)")

    p_regen = sub.add_parser("regen", help="regenerate golden digests")
    p_regen.add_argument("--path", default=GOLDEN_PATH)

    p_engines = sub.add_parser(
        "engines", help="engine-equivalence oracle over the full table")
    p_engines.add_argument("--programs", nargs="+", default=None,
                           help="programs (default: the full table)")

    p_riscv = sub.add_parser(
        "riscv", help="riscv trace-frontend oracles (round-trip, "
                      "determinism, engine identity, goldens)")
    p_riscv.add_argument("--programs", nargs="+", default=None,
                         help="riscv:<kernel> names (default: the "
                              "whole committed corpus)")
    p_riscv.add_argument("--path", default=None,
                         help="riscv golden digest file (default: "
                              "results/riscv_golden_digests.json)")
    p_riscv.add_argument("--engine", choices=("reference", "fast"),
                         default=None,
                         help="engine recomputing the golden digests")
    p_riscv.add_argument("--regen", action="store_true",
                         help="rewrite the riscv golden file instead "
                              "of checking it")

    p_smt = sub.add_parser("smt", help="run the SMT oracle suite")
    p_smt.add_argument("--programs", nargs="+", default=None,
                       help="baseline-identity programs (default: the "
                            "5-program SMT corpus)")

    p_fuzz = sub.add_parser("fuzz", help="paired-run fuzzing")
    p_fuzz.add_argument("--pairs", type=int, default=8,
                        help="number of differential pairs (default 8)")
    p_fuzz.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: all cores)")
    p_fuzz.add_argument("--seed", type=int, default=1,
                        help="base seed; same seed replays the session")
    p_fuzz.add_argument("--engines", action="store_true",
                        help="pair the reference and fast execution "
                             "engines instead of the ff/pin kinds")

    args = parser.parse_args(argv)
    command = args.command or "oracles"

    if command == "oracles":
        outcomes = run_all_oracles(tuple(args.programs)
                                   if args.command else SMOKE_CORPUS)
    elif command == "check":
        outcomes = check_golden(args.path, engine=args.engine)
    elif command == "engines":
        from repro.verify.oracles import check_engine_equivalence
        outcomes = check_engine_equivalence(
            tuple(args.programs) if args.programs else None)
    elif command == "riscv":
        from repro.verify.riscv_oracles import (RISCV_GOLDEN_PATH,
                                                run_riscv_oracles,
                                                write_riscv_golden)
        path = args.path or RISCV_GOLDEN_PATH
        if args.regen:
            payload = write_riscv_golden(path, programs=args.programs)
            cells = sum(len(v) for v in payload["digests"].values())
            print(f"wrote {cells} riscv digests for SIM_VERSION "
                  f"{payload['sim_version']} to {path}")
            return 0
        outcomes = run_riscv_oracles(args.programs, golden_path=path,
                                     engine=args.engine)
    elif command == "smt":
        from repro.verify.smt_oracles import run_smt_oracles
        outcomes = run_smt_oracles(args.programs)
    elif command == "regen":
        payload = write_golden(args.path)
        cells = sum(len(v) for v in payload["digests"].values())
        print(f"wrote {cells} digests for SIM_VERSION "
              f"{payload['sim_version']} to {args.path}")
        return 0
    else:
        from repro.verify.fuzz import run_fuzz
        outcomes = run_fuzz(n_pairs=args.pairs, jobs=args.jobs,
                            base_seed=args.seed, engines=args.engines)

    print(report(outcomes))
    return 0 if all(o.passed for o in outcomes) else 1


if __name__ == "__main__":
    sys.exit(main())
