"""repro — MLP-aware dynamic instruction window resizing, reproduced.

A from-scratch Python reproduction of Kora, Yamaguchi & Ando,
"MLP-Aware Dynamic Instruction Window Resizing for Adaptively Exploiting
Both ILP and MLP", MICRO-46 (2013): a cycle-level out-of-order processor
simulator, the MLP-aware window resizing mechanism, a runahead-execution
comparator, synthetic SPEC2006-like workloads, and an energy/area model —
plus one experiment harness per table and figure of the paper.

Quick start::

    from repro import simulate, dynamic_config, base_config, generate_trace
    from repro.workloads import profile

    trace = generate_trace(profile("libquantum"), n_ops=40_000, seed=1)
    base = simulate(base_config(), trace)
    resized = simulate(dynamic_config(), trace)
    print(f"speedup: {resized.ipc / base.ipc:.2f}x")
"""

from repro.config import (
    ModelKind,
    ProcessorConfig,
    ResourceLevel,
    LEVEL_TABLE,
    LEVEL_TRANSITION_PENALTY,
    base_config,
    fixed_config,
    ideal_config,
    dynamic_config,
    runahead_config,
)
from repro.pipeline import Processor, simulate
from repro.workloads import (
    ProgramProfile,
    TraceGenerator,
    Trace,
    generate_trace,
    profile,
    program_names,
    PROFILES,
)
from repro.core import MLPAwarePolicy, StaticPolicy, make_policy
from repro.multicore import MultiCoreSystem, simulate_multicore
from repro.analysis import cpi_stack
from repro.energy import EnergyModel, AreaModel
from repro.stats import SimulationResult, geometric_mean

__version__ = "1.0.0"

__all__ = [
    "ModelKind",
    "ProcessorConfig",
    "ResourceLevel",
    "LEVEL_TABLE",
    "LEVEL_TRANSITION_PENALTY",
    "base_config",
    "fixed_config",
    "ideal_config",
    "dynamic_config",
    "runahead_config",
    "Processor",
    "simulate",
    "ProgramProfile",
    "TraceGenerator",
    "Trace",
    "generate_trace",
    "profile",
    "program_names",
    "PROFILES",
    "MLPAwarePolicy",
    "StaticPolicy",
    "make_policy",
    "EnergyModel",
    "AreaModel",
    "SimulationResult",
    "geometric_mean",
    "MultiCoreSystem",
    "simulate_multicore",
    "cpi_stack",
    "__version__",
]
