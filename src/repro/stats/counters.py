"""Run-time counters updated by the pipeline.

:class:`SimStats` is deliberately dumb — plain integer fields the hot loop
can bump without indirection.  Aggregation and derived metrics live in
:mod:`repro.stats.report`.
"""

from __future__ import annotations


class ActivityCounters:
    """Per-structure activity, the dynamic-energy input of the McPAT-like
    model (:mod:`repro.energy`).

    ``*_size_cycles`` fields integrate the *active* capacity of a window
    resource over time; leakage of the gated (unused) region is charged at
    a reduced rate by the energy model, as in Section 4 of the paper
    ("signals propagated to the unused region are gated, and precharging
    of the dynamic circuits in the unused region is disabled").
    """

    __slots__ = (
        "fetches", "decodes", "renames", "iq_writes", "iq_issues",
        "iq_wakeups", "rob_writes", "rob_reads", "lsq_searches",
        "fu_ops", "l1i_accesses", "l1d_accesses", "l2_accesses",
        "dram_transfers", "bpred_lookups",
        "iq_size_cycles", "rob_size_cycles", "lsq_size_cycles",
        "iq_max_cycles", "rob_max_cycles", "lsq_max_cycles",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


class SimStats:
    """All counters for one simulation (one program, one model)."""

    def __init__(self) -> None:
        self.activity = ActivityCounters()
        self.reset()

    def reset(self) -> None:
        # headline progress
        self.cycles = 0
        self.committed_uops = 0
        self.committed_loads = 0
        self.committed_stores = 0
        self.committed_branches = 0
        self.committed_mispredicts = 0
        # dispatch-side accounting
        self.dispatched_uops = 0
        self.issued_uops = 0
        self.squashed_uops = 0
        self.wrong_path_uops = 0
        # window resizing
        self.level_cycles: dict[int, int] = {}
        #: (cycle, new_level) for every applied transition, in order —
        #: the raw material for phase-behaviour analysis (paper Fig 6)
        self.level_transitions: list[tuple[int, int]] = []
        self.enlarge_transitions = 0
        self.shrink_transitions = 0
        self.stop_alloc_cycles = 0
        self.transition_stall_cycles = 0
        # memory behaviour
        self.l2_miss_cycles: list[int] = []      # detection cycles (Fig 4)
        self.demand_miss_intervals: list[tuple[int, int]] = []   # MLP
        # branch behaviour (Table 5)
        self.mispredict_distances: list[int] = []
        self._last_mispredict_commit = 0
        # front-end stalls
        self.fetch_stall_cycles = 0
        self.dispatch_stall_cycles = 0
        #: commit-slot stall attribution (CPI-stack raw material):
        #: reason -> unused commit slots charged to it
        self.stall_slots: dict[str, int] = {}
        self.activity.reset()

    def note_stall_slots(self, reason: str, slots: int) -> None:
        """Charge ``slots`` unused commit slots to ``reason``."""
        self.stall_slots[reason] = self.stall_slots.get(reason, 0) + slots

    # ------------------------------------------------------------------

    def note_level_cycles(self, level: int, cycles: int) -> None:
        """Charge ``cycles`` of residency at ``level`` (Fig 8)."""
        self.level_cycles[level] = self.level_cycles.get(level, 0) + cycles

    def note_mispredict_commit(self) -> None:
        """A mispredicted branch committed; record the distance since the
        previous one in committed instructions (Table 5)."""
        distance = self.committed_uops - self._last_mispredict_commit
        self.mispredict_distances.append(distance)
        self._last_mispredict_commit = self.committed_uops

    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.committed_uops / self.cycles if self.cycles else 0.0

    def level_residency(self) -> dict[int, float]:
        """Fraction of cycles spent at each level."""
        total = sum(self.level_cycles.values())
        if not total:
            return {}
        return {lvl: c / total for lvl, c in sorted(self.level_cycles.items())}

    def average_mispredict_distance(self) -> float:
        """Mean committed instructions between mispredicted branches.

        If no branch ever mispredicted, returns the committed instruction
        count (the paper reports multi-million values for libquantum/milc
        for the same reason: nearly no mispredictions in the sample).
        """
        if not self.mispredict_distances:
            return float(self.committed_uops)
        return sum(self.mispredict_distances) / len(self.mispredict_distances)

    def miss_intervals(self) -> list[int]:
        """Cycle gaps between consecutive L2 demand misses (Fig 4).

        Detection times are sorted first: misses detected in the same
        cycle arrive from several requesters (demand loads, fetch) in
        arbitrary callback order.
        """
        times = sorted(self.l2_miss_cycles)
        return [b - a for a, b in zip(times, times[1:])]
