"""Histograms and interval arithmetic for the memory-behaviour figures.

* :class:`IntervalHistogram` bins L2 miss intervals the way Figure 4 of
  the paper does (8-cycle bins, long tail clipped into the last bin).
* :func:`mlp_from_intervals` computes achieved memory-level parallelism:
  the average number of outstanding demand misses over the cycles during
  which at least one miss is outstanding.
"""

from __future__ import annotations


class IntervalHistogram:
    """Fixed-width-bin histogram of non-negative integer samples."""

    def __init__(self, bin_width: int = 8, max_value: int = 512) -> None:
        if bin_width < 1 or max_value < bin_width:
            raise ValueError("need bin_width >= 1 and max_value >= bin_width")
        self.bin_width = bin_width
        self.max_value = max_value
        self.num_bins = max_value // bin_width
        self.bins = [0] * (self.num_bins + 1)   # last bin = overflow
        self.count = 0
        self.total = 0

    def add(self, value: int) -> None:
        if value < 0:
            raise ValueError("interval samples must be non-negative")
        index = min(value // self.bin_width, self.num_bins)
        self.bins[index] += 1
        self.count += 1
        self.total += value

    def add_all(self, values) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bin_edges(self) -> list[tuple[int, int]]:
        """(low, high) cycle range of each bin; the last is open-ended."""
        edges = [(i * self.bin_width, (i + 1) * self.bin_width)
                 for i in range(self.num_bins)]
        edges.append((self.max_value, -1))
        return edges

    def fraction_below(self, value: int) -> float:
        """Fraction of samples strictly below ``value`` cycles."""
        if not self.count:
            return 0.0
        full_bins = min(value // self.bin_width, self.num_bins)
        return sum(self.bins[:full_bins]) / self.count

    def peak_bin(self, skip_first: int = 0) -> int:
        """Index of the fullest bin at or after ``skip_first``."""
        tail = self.bins[skip_first:]
        if not tail:
            raise ValueError("skip_first beyond histogram")
        return skip_first + max(range(len(tail)), key=tail.__getitem__)

    def rows(self) -> list[tuple[str, int]]:
        """Render-ready (label, count) rows."""
        out = []
        for (low, high), count in zip(self.bin_edges(), self.bins):
            label = f"{low}-{high}" if high >= 0 else f">={low}"
            out.append((label, count))
        return out


def mlp_from_intervals(intervals: list[tuple[int, int]]) -> float:
    """Average outstanding demand misses while any miss is outstanding.

    ``intervals`` are (start, end) cycles of individual demand L2 misses.
    MLP = sum of individual durations / length of their union.  A value
    of 1.0 means misses were fully serialised (Figure 1a of the paper);
    larger values mean overlap (Figure 1b).
    """
    if not intervals:
        return 0.0
    total = sum(end - start for start, end in intervals)
    merged = 0
    cur_start = cur_end = None
    for start, end in sorted(intervals):
        if cur_end is None or start > cur_end:
            if cur_end is not None:
                merged += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    if cur_end is not None:
        merged += cur_end - cur_start
    return total / merged if merged else 0.0
