"""Measurement infrastructure.

Everything the paper's evaluation section reports is collected here:
IPC, per-level cycle residency (Fig 8), L2 miss-interval histograms
(Fig 4), misprediction distances (Table 5), average load latency
(Table 3), memory-level parallelism, the activity counters consumed by
the energy model (Fig 9 / Table 4), and the L2 line-usage breakdown
(Fig 11, collected inside :mod:`repro.memory.hierarchy`).
"""

from repro.stats.counters import SimStats, ActivityCounters
from repro.stats.histograms import IntervalHistogram, mlp_from_intervals
from repro.stats.report import SimulationResult, geometric_mean
from repro.stats.timeline import (
    Timeline,
    TimelineSampler,
    record_timeline,
    sparkline,
)

__all__ = [
    "SimStats",
    "ActivityCounters",
    "IntervalHistogram",
    "mlp_from_intervals",
    "SimulationResult",
    "geometric_mean",
    "Timeline",
    "TimelineSampler",
    "record_timeline",
    "sparkline",
]
