"""Per-run result records and cross-run aggregation helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.stats.counters import SimStats


@dataclass
class SimulationResult:
    """Everything one simulation run produced, in derived-metric form.

    ``stats`` keeps the raw counters; the scalar fields are what the
    experiment harnesses consume.
    """

    program: str
    model: str
    level: int
    cycles: int
    instructions: int
    ipc: float
    avg_load_latency: float
    mispredict_rate: float
    mlp: float
    level_residency: dict[int, float] = field(default_factory=dict)
    line_usage: dict[str, int] = field(default_factory=dict)
    memory_stats: dict[str, int] = field(default_factory=dict)
    energy_nj: float = 0.0
    edp: float = 0.0
    stats: SimStats | None = None

    def speedup_over(self, base: "SimulationResult") -> float:
        """IPC ratio against a baseline run of the same program."""
        if base.ipc <= 0:
            raise ValueError(f"baseline IPC is zero for {base.program}")
        return self.ipc / base.ipc

    def summary_line(self) -> str:
        return (f"{self.program:<12} {self.model:<8} L{self.level} "
                f"IPC={self.ipc:6.3f} loadlat={self.avg_load_latency:7.1f} "
                f"MLP={self.mlp:5.2f} cycles={self.cycles}")


def geometric_mean(values) -> float:
    """Geometric mean, as the paper uses for its GM bars."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
