"""Windowed time-series sampling of a running simulation.

A :class:`TimelineSampler` attaches to a :class:`~repro.pipeline.Processor`
and records per-window samples of the quantities that show the paper's
*phase* story (Figure 6): the active window level, committed IPC, and L2
misses per window.  ``sparkline`` renders a series as a compact ASCII
strip for terminal output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

_SPARK_CHARS = " .:-=+*#%@"


@dataclass
class TimelineSample:
    """One sampling window."""

    cycle: int
    level: int
    committed: int
    l2_misses: int
    #: cycles this window covers; 0 on legacy samples constructed
    #: without it, in which case ``ipc`` is unknowable and reads 0.0
    window_cycles: int = 0

    @property
    def ipc(self) -> float:
        if not self.window_cycles:
            return 0.0
        return self.committed / self.window_cycles


@dataclass
class Timeline:
    """A finished recording."""

    window_cycles: int
    samples: list[TimelineSample] = field(default_factory=list)

    def levels(self) -> list[int]:
        return [s.level for s in self.samples]

    def ipcs(self) -> list[float]:
        return [s.committed / self.window_cycles for s in self.samples]

    def miss_counts(self) -> list[int]:
        return [s.l2_misses for s in self.samples]

    def __len__(self) -> int:
        return len(self.samples)


class TimelineSampler:
    """Samples a processor every ``window_cycles`` simulated cycles.

    Usage::

        proc = Processor(dynamic_config(3), trace)
        sampler = TimelineSampler(proc, window_cycles=500)
        while proc.committed_total < target:
            proc.run(until_committed=proc.committed_total + 500)
            sampler.poll()
        timeline = sampler.finish()
    """

    def __init__(self, processor, window_cycles: int = 500) -> None:
        if window_cycles < 1:
            raise ValueError("window must be >= 1 cycle")
        self.processor = processor
        self.timeline = Timeline(window_cycles=window_cycles)
        self._next_edge = processor.cycle + window_cycles
        self._last_committed = processor.committed_total
        self._last_misses = processor.hierarchy.demand_l2_misses

    def poll(self) -> None:
        """Record samples for every window edge passed since last poll."""
        proc = self.processor
        while proc.cycle >= self._next_edge:
            committed = proc.committed_total
            misses = proc.hierarchy.demand_l2_misses
            self.timeline.samples.append(TimelineSample(
                cycle=self._next_edge,
                level=proc.level,
                committed=committed - self._last_committed,
                l2_misses=misses - self._last_misses,
                window_cycles=self.timeline.window_cycles))
            self._last_committed = committed
            self._last_misses = misses
            self._next_edge += self.timeline.window_cycles

    def finish(self) -> Timeline:
        self.poll()
        return self.timeline


def sparkline(values, width: int = 60, max_value: float | None = None) -> str:
    """Render a numeric series as a one-line ASCII sparkline."""
    values = list(values)
    if not values:
        return ""
    if len(values) > width:
        # average-pool down to `width` buckets
        bucket = len(values) / width
        pooled = []
        for i in range(width):
            lo = int(i * bucket)
            hi = max(lo + 1, int((i + 1) * bucket))
            chunk = values[lo:hi]
            pooled.append(sum(chunk) / len(chunk))
        values = pooled
    top = max_value if max_value is not None else max(values)
    if top <= 0:
        return " " * len(values)
    chars = []
    for v in values:
        idx = min(len(_SPARK_CHARS) - 1,
                  int(v / top * (len(_SPARK_CHARS) - 1) + 0.5))
        chars.append(_SPARK_CHARS[max(0, idx)])
    return "".join(chars)


def record_timeline(processor, until_committed: int,
                    window_cycles: int = 500,
                    poll_every: int = 200) -> Timeline:
    """Run ``processor`` to ``until_committed``, sampling as it goes."""
    sampler = TimelineSampler(processor, window_cycles=window_cycles)
    while processor.committed_total < until_committed:
        target = min(until_committed,
                     processor.committed_total + poll_every)
        processor.run(until_committed=target)
        sampler.poll()
        if processor.committed_total < target:
            break   # trace exhausted
    return sampler.finish()
